(** Versioned checkpoint envelopes for the step-wise engine kernel.

    A checkpoint is one file: a single JSON meta line (stream tag,
    envelope version, engine spelling, model identity, driver step
    count, engine bound, elapsed seconds, payload byte count) followed
    by the engine's opaque binary payload.  The meta line is readable by
    any JSON tool — [isr_obs ckpt] pretty-prints it without linking the
    engines — while the payload is private to the engine that wrote it.

    Payloads must be {e pure data}: no closures, no solver handles, no
    manager-relative AIG literals.  Engines serialize the AIG part of
    their state as explicit {!cone} structures and rebuild them on the
    restored model's manager, where hash-consing reproduces the same
    shared nodes. *)

open Isr_aig
open Isr_model

(** {1 Portable AIG cones} *)

type node =
  | Const         (** the constant node *)
  | Input of int  (** manager input index (PI or latch output) *)
  | And of int    (** index into the cone's [ands] array *)

type edge = { inv : bool; node : node }  (** complement bit + target *)

type cone = { ands : (edge * edge) array; root : edge }
(** A literal's cone in topological order: [ands.(i)]'s edges only
    reference inputs, the constant, or AND entries [< i]. *)

val cone_of_lit : Aig.man -> Aig.lit -> cone
val lit_of_cone : Aig.man -> cone -> Aig.lit
(** [lit_of_cone man (cone_of_lit man l) = l] on the same (or a
    structurally identical) manager — hash-consing guarantees it. *)

val cones_of_lits : Aig.man -> Aig.lit array -> cone array
val lits_of_cones : Aig.man -> cone array -> Aig.lit array

(** {1 Envelope} *)

val version : int
(** Current envelope version; {!read} rejects newer files. *)

type t = {
  version : int;
  engine : string;     (** {!Engine.name} spelling — routes {!Engine.of_name} on resume *)
  model : string;      (** model name, informational *)
  model_sig : string;  (** structural signature; {!check_model} enforces it *)
  steps : int;         (** driver steps completed before the snapshot *)
  bound : int;         (** the engine's bound/round at the snapshot *)
  elapsed : float;     (** wall seconds consumed before the snapshot *)
  payload : string;    (** engine-private marshalled state *)
}

val model_signature : Model.t -> string
(** Stable structural identity: input/latch counts, initial state and
    property-cone size.  Deliberately {e not} the manager's node count,
    which grows as engines build interpolants. *)

val make :
  engine:string ->
  model:Model.t ->
  steps:int ->
  bound:int ->
  elapsed:float ->
  payload:string ->
  t

val check_model : t -> Model.t -> (unit, string) Result.t
(** Does this checkpoint belong to (a structurally identical twin of)
    [model]?  Mismatched signatures make {!lit_of_cone} meaningless. *)

val meta_json : t -> string
(** The meta line (no trailing newline). *)

val write : string -> t -> unit
(** Atomic (write-then-rename), like the flight recorder's dumps.
    @raise Sys_error on unwritable paths. *)

val read : string -> t
(** @raise Failure on missing files, foreign content, or a newer
    envelope version. *)
