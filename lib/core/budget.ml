open Isr_sat

type limits = {
  time_limit : float;
  conflict_limit : int;
  bound_limit : int;
  reduce : Solver.reduce_policy;
}

let default_limits =
  { time_limit = 60.0;
    conflict_limit = 2_000_000;
    bound_limit = 200;
    reduce = Solver.default_reduce;
  }

exception Out_of_time
exception Out_of_conflicts
exception Cancelled

(* Ambient cancel token.  The parallel portfolio runner needs every
   budget created inside a worker domain to observe its race's cancel
   flag, without threading a parameter through every engine signature —
   so the token lives in domain-local storage and [start] captures
   whatever is current.  Sequential runs never set one and pay nothing
   beyond an option check. *)
let cancel_key : bool Atomic.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_cancel c = Domain.DLS.set cancel_key c
let current_cancel () = Domain.DLS.get cancel_key

let with_cancel c f =
  let old = current_cancel () in
  set_cancel (Some c);
  Fun.protect ~finally:(fun () -> set_cancel old) f

(* Ambient clause-share context, same shape as the cancel token: the
   parallel runner installs one per worker domain and every budgeted SAT
   call inside exports its learnt clauses through [export] and pulls
   peers' clauses in with [import] at slice boundaries — the solver is
   guaranteed to sit at the root level there, which is the safe point to
   splice clauses in.  Sequential runs never install one. *)
type share = {
  export : lits:Lit.t array -> lbd:int -> bool;
      (* offer one locally learnt clause; [true] = accepted by the ring *)
  import : Solver.t -> int * int * int;
      (* drain peers' clauses into the solver; returns
         (imported, satisfied, dropped) counts for this round *)
}

let share_key : share option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_share sh = Domain.DLS.set share_key sh
let current_share () = Domain.DLS.get share_key

let with_share sh f =
  let old = current_share () in
  set_share (Some sh);
  Fun.protect ~finally:(fun () -> set_share old) f

type t = {
  l : limits;
  t0 : float;
  mutable conflicts_left : int;
  cancel : bool Atomic.t option;
}

let start l =
  { l;
    t0 = Isr_obs.Clock.now ();
    conflicts_left = l.conflict_limit;
    cancel = current_cancel ();
  }

let limits b = b.l
let elapsed b = Isr_obs.Clock.now () -. b.t0
let cancelled b = match b.cancel with Some c -> Atomic.get c | None -> false

let check_time b =
  if cancelled b then raise Cancelled;
  if elapsed b > b.l.time_limit then begin
    (* The run will unwind through every engine layer from here; leave
       the forensic trail first (Flight dumps are throttled, so the
       repeated raises on the way out cost one file write). *)
    ignore (Isr_obs.Flight.dump ~reason:"budget.time" ());
    raise Out_of_time
  end

(* Solve in slices so the deadline is honoured mid-search: the solver is
   resumable after an exhausted conflict budget. *)
let slice = 20_000

(* One logical SAT call: charges a call plus the conflict, decision,
   propagation and restart deltas to the run's metrics registry, feeds
   the learned-clause-length histogram, and brackets the whole call in a
   "sat.call" span (the per-slice "sat.solve" spans nest inside it). *)
(* Fold a 16-bucket count array into a registry histogram (bucket index
   = sample value).  Reductions and verdicts are rare; the inner loop is
   nowhere near any hot path. *)
let observe_counts h counts =
  Array.iteri
    (fun v n ->
      for _ = 1 to n do
        Isr_obs.Metrics.observe h (float_of_int v)
      done)
    counts

let solve ?assumptions b (stats : Verdict.stats) solver =
  Isr_obs.Metrics.incr stats.Verdict.c_sat_calls;
  (* The reduction policy is a formulation-level knob carried by the
     limits; re-applying an unchanged policy keeps the solver's
     geometric schedule running. *)
  Solver.set_reduce solver b.l.reduce;
  (* Clauses born in this call carry the logical call index as their
     origin phase — stable across replays, unlike wall time. *)
  Solver.set_origin solver (Isr_obs.Metrics.value stats.Verdict.c_sat_calls);
  Solver.on_learnt solver
    (Some
       (fun ~len ~lbd ->
         Isr_obs.Metrics.observe stats.Verdict.h_learnt_len (float_of_int len);
         Isr_obs.Metrics.observe stats.Verdict.h_clause_birth_lbd (float_of_int lbd)));
  (* Clause sharing, when the ambient context is installed: learnt
     clauses flow out through the export ring, and peers' clauses are
     drained in at slice boundaries (the solver is at the root level
     there — the only safe point to splice clauses in). *)
  let sh = current_share () in
  (match sh with
  | None -> ()
  | Some sh ->
    Solver.on_export solver
      (Some
         (fun ~lits ~lbd ->
           if sh.export ~lits ~lbd then
             Isr_obs.Metrics.incr stats.Verdict.c_share_export)));
  let import_round () =
    match sh with
    | None -> ()
    | Some sh ->
      let imported, satisfied, dropped = sh.import solver in
      Isr_obs.Metrics.add stats.Verdict.c_share_import imported;
      Isr_obs.Metrics.add stats.Verdict.c_share_drop (satisfied + dropped)
  in
  (* Both the deadline and a race's cancel token must stop the search
     mid-slice, not after up to 20k more conflicts: the solver polls this
     every few hundred conflicts / decisions (and every [poll_props]
     propagations, for conflict-light searches) and bails with [Undef],
     which the slice loop turns into [Out_of_time] or [Cancelled] via
     [check_time].  The same cadence services deferred flight-recorder
     dump requests (a signal handler that lost the ring lock). *)
  Solver.set_interrupt solver
    (Some
       (fun () ->
         Isr_obs.Flight.poll ();
         cancelled b || elapsed b > b.l.time_limit));
  (* Restart-cadence heartbeats.  Deltas are charged to the registry only
     at slice boundaries, so read the live solver counters here: registry
     value before this call plus the in-call delta. *)
  let c_base = Isr_obs.Metrics.value stats.Verdict.c_conflicts
  and p_base = Isr_obs.Metrics.value stats.Verdict.c_propagations in
  let sc0 = Solver.num_conflicts solver and sp0 = Solver.num_propagations solver in
  Solver.on_restart solver
    (Some
       (fun n ->
         if Isr_obs.Progress.enabled () then
           Isr_obs.Progress.tick ~step:n
             ~conflicts:(c_base + Solver.num_conflicts solver - sc0)
             ~propagations:(p_base + Solver.num_propagations solver - sp0)
             ~learnt:(Isr_obs.Metrics.hist_count stats.Verdict.h_learnt_len)
             "sat.restart";
         if Isr_obs.Event.enabled () then
           Isr_obs.Event.emit
             (Isr_obs.Event.Restart
                {
                  conflicts = c_base + Solver.num_conflicts solver - sc0;
                  decisions = Solver.num_decisions solver;
                  learnt = Solver.num_live_learnt solver;
                })));
  (* Database reductions: charge the registry and post a heartbeat with
     the same cumulative-effort convention as the restart one. *)
  Solver.on_reduce solver
    (Some
       (fun (ri : Solver.reduce_info) ->
         Isr_obs.Metrics.incr stats.Verdict.c_db_reduce;
         Isr_obs.Metrics.set stats.Verdict.g_db_kept (float_of_int ri.Solver.kept);
         (* Victim lifecycle histograms: how useful were the clauses we
            just threw away, and how much did their glue improve. *)
         observe_counts stats.Verdict.h_clause_uses_death ri.Solver.dead_uses;
         observe_counts stats.Verdict.h_clause_drift ri.Solver.dead_drift;
         if Isr_obs.Progress.enabled () then
           Isr_obs.Progress.tick ~step:ri.Solver.kept
             ~conflicts:(c_base + Solver.num_conflicts solver - sc0)
             ~propagations:(p_base + Solver.num_propagations solver - sp0)
             ~learnt:(Isr_obs.Metrics.hist_count stats.Verdict.h_learnt_len)
             "sat.db.reduce";
         if Isr_obs.Event.enabled () then
           Isr_obs.Event.emit
             (Isr_obs.Event.Reduce
                {
                  kept = ri.Solver.kept;
                  dropped = ri.Solver.deleted;
                  lbd = ri.Solver.kept_lbd;
                  dead_lbd = ri.Solver.dead_lbd;
                  dead_uses = ri.Solver.dead_uses;
                })));
  let charge_from c0 d0 p0 r0 bo0 x0 =
    Isr_obs.Metrics.add stats.Verdict.c_conflicts (Solver.num_conflicts solver - c0);
    Isr_obs.Metrics.add stats.Verdict.c_decisions (Solver.num_decisions solver - d0);
    Isr_obs.Metrics.add stats.Verdict.c_propagations (Solver.num_propagations solver - p0);
    Isr_obs.Metrics.add stats.Verdict.c_restarts (Solver.num_restarts solver - r0);
    Isr_obs.Metrics.add stats.Verdict.c_clause_born (Solver.num_learnt solver - bo0);
    Isr_obs.Metrics.add stats.Verdict.c_clause_deleted (Solver.num_deleted solver - x0)
  in
  let rec go () =
    check_time b;
    if b.conflicts_left <= 0 then begin
      ignore (Isr_obs.Flight.dump ~reason:"budget.conflicts" ());
      raise Out_of_conflicts
    end;
    import_round ();
    let before = Solver.num_conflicts solver in
    let d0 = Solver.num_decisions solver and p0 = Solver.num_propagations solver in
    let r0 = Solver.num_restarts solver in
    let bo0 = Solver.num_learnt solver and x0 = Solver.num_deleted solver in
    let r = Solver.solve ?assumptions ~conflict_budget:(min slice b.conflicts_left) solver in
    let used = Solver.num_conflicts solver - before in
    b.conflicts_left <- b.conflicts_left - used;
    charge_from before d0 p0 r0 bo0 x0;
    match r with
    | Solver.Undef -> go ()
    | r ->
      check_time b;
      (* Proof-core attribution by birth LBD, only when observability is
         on (it costs a proof reconstruction) and only when a refutation
         actually exists (Unsat under assumptions has none). *)
      if r = Solver.Unsat && Isr_obs.Event.enabled () && Solver.refuted solver then
        observe_counts stats.Verdict.h_clause_core_lbd (Solver.core_birth_lbd solver);
      r
  in
  let res = ref Solver.Undef in
  let end_args () =
    [
      ("result",
       match !res with Solver.Sat -> "sat" | Solver.Unsat -> "unsat" | Solver.Undef -> "undef");
      ("vars", string_of_int (Solver.nvars solver));
      ("clauses", string_of_int (Solver.num_clauses solver));
    ]
  in
  (* The observers capture this call's registry and counter baselines;
     left installed they would keep charging a stale registry from the
     next call (or a later engine's), and on the raising paths the next
     caller would inherit them silently — always strip them on the way
     out, normal return or not. *)
  Fun.protect
    ~finally:(fun () ->
      Solver.on_learnt solver None;
      Solver.on_export solver None;
      Solver.on_restart solver None;
      Solver.on_reduce solver None;
      Solver.set_interrupt solver None;
      (* Proof-store gauges track the largest log the run grew (gauges
         keep the maximum on merge; [set_max] keeps it across calls). *)
      Isr_obs.Metrics.set_max stats.Verdict.g_proof_steps
        (float_of_int (Solver.proof_steps solver));
      Isr_obs.Metrics.set_max stats.Verdict.g_proof_bytes
        (float_of_int (Solver.proof_bytes solver)))
    (fun () ->
      Isr_obs.Trace.span "sat.call" ~end_args (fun () ->
          let r = go () in
          res := r;
          r))
