(** The one Chrome trace-event JSON emitter.

    Both observability streams render to the Chrome/Perfetto trace-event
    format: {!Trace} sinks write span begin/end/instant records, and
    {!Event.to_chrome} exports the merged search-event stream as instant
    events.  This module is the single place that knows the wire
    details — pid is always 1, the emitting domain id becomes thread id
    [dom + 1] so parallel races render one lane per domain, timestamps
    convert from seconds to microseconds with one decimal, and instant
    events carry the ["s":"t"] scope Perfetto needs to draw them. *)

val add_event :
  Buffer.t ->
  first:bool ->
  ph:string ->
  ?name:string ->
  tid:int ->
  ts:float ->
  (string * string) list ->
  unit
(** Append one trace-event object to [b].  [ph] is the Chrome phase
    ("B", "E" or "i"), [tid] the raw domain id (rendered as [tid + 1]),
    [ts] the {!Clock} timestamp in seconds, and the final argument the
    [args] key/value pairs (escaped; omitted when empty).  When [first]
    is false a [",\n"] separator is emitted before the object, so a
    caller streaming into a JSON array only tracks one flag. *)
