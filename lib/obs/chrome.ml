(* Shared Chrome trace-event writer; see the .mli for the wire rules. *)

let escape = Json.escape_to

let add_args b args =
  if args <> [] then begin
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\":\"";
        escape b v;
        Buffer.add_char b '"')
      args;
    Buffer.add_char b '}'
  end

let add_event b ~first ~ph ?name ~tid ~ts args =
  if not first then Buffer.add_string b ",\n";
  Buffer.add_string b "{\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int (tid + 1));
  Buffer.add_string b ",\"ts\":";
  Buffer.add_string b (Printf.sprintf "%.1f" (ts *. 1e6));
  (match name with
  | Some n ->
    Buffer.add_string b ",\"name\":\"";
    escape b n;
    Buffer.add_char b '"'
  | None -> ());
  add_args b args;
  (* Instant events need a scope for Perfetto to render them. *)
  if ph = "i" then Buffer.add_string b ",\"s\":\"t\"";
  Buffer.add_char b '}'
