(** Clause-lifecycle report: the solver's learnt database as a measured
    population.

    Folds a run's metrics snapshot (the ["clause.*"] registry entries)
    and its event stream (the [Reduce] victims' exact histograms) into
    one survival/usefulness report: how many clauses were born, deleted
    and kept, how they were distributed by birth LBD, how many conflict
    analyses the deleted ones served first, how much their glue
    improved, and which birth-LBD band the proof-core clauses came from
    — exactly the evidence a HordeSat-style clause-sharing export
    filter needs.  Pure: inputs are parsed JSON and decoded events,
    rendering is a formatter, so the report is unit-testable against
    canned runs.  Backed by the [isr_obs clauses] subcommand. *)

type hist = {
  count : int;
  mean : float;
  max_v : float;
  buckets : (float * int) list;  (** cumulative [le] upper bounds, as in {!Metrics} *)
}

type t = {
  born : int;            (** clauses learned (the ["clause.born"] counter) *)
  deleted : int;         (** reduction victims (["clause.deleted"]) *)
  kept : int;            (** [born - deleted] *)
  reduces : int;         (** database reductions (["sat.db.reduce"]) *)
  birth_lbd : hist option;      (** ["clause.birth_lbd"] *)
  uses_at_death : hist option;  (** ["clause.uses_at_death"] *)
  lbd_drift : hist option;      (** ["clause.lbd_drift"] *)
  core_birth_lbd : hist option; (** ["clause.core_birth_lbd"] *)
  ev_dead_lbd : int array;   (** victims by LBD at death, summed over [Reduce] events *)
  ev_dead_uses : int array;  (** victims by uses before deletion, same *)
  ev_timeline : (float * int * int) list;
      (** one [(ts, kept, dropped)] per [Reduce] event, in stream order *)
  violations : string list;
      (** violated sum-pinning invariants ([kept + deleted = born],
          proof-core within born, event sums matching event counts);
          empty for a consistent run *)
}

val of_run : metrics:Json.t option -> events:Event.t list -> t
(** Build the report from a parsed metrics snapshot (as stored in the
    ledger's [metrics_json]) and a decoded event stream; either side may
    be missing and the report degrades to what is available. *)

val pp : Format.formatter -> t -> unit
