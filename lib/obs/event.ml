(* Packed search-event recorder; see the .mli for the model.

   On-the-wire layout (per-domain int buffers): each record is
     [code; ts_ns; payload...]
   with a fixed payload arity per code (the Reduce LBD snapshot is
   length-prefixed).  Strings are interned into one shared table, so a
   phase name costs one int per event no matter how often it fires. *)

(* Schema 2 extends Reduce with the victims' LBD and use-count
   histograms (clause-lifecycle analytics); readers accept schema-1
   streams, where those arrays decode as empty.  Schema 3 adds the
   [Share] clause-traffic event and the [Exhausted] cancellation cause.
   Schema 4 adds the [Step] engine-kernel record.  [write_jsonl] stamps
   the lowest schema that covers the stream, so a recording without
   newer features stays loadable by older readers (which skip unknown
   events/causes anyway). *)
let schema_version = 4

let min_schema_version = 1

type cause = Race_won | Deadline | Min_depth | Exhausted

type kind =
  | Restart of { conflicts : int; decisions : int; learnt : int }
  | Reduce of {
      kept : int;
      dropped : int;
      lbd : int array;
      dead_lbd : int array;
      dead_uses : int array;
    }
  | Itp_cut of { cut : int; support : int; nodes : int }
  | Phase of { phase : string; step : int; detail : string }
  | Spawn of { worker : int; engines : string }
  | Dispatch of { worker : int; bound : int }
  | Cancel of { worker : int; cause : cause; by : int }
  | Verdict of { worker : int; verdict : string }
  | Analyze of {
      pass : string;
      ands_before : int;
      ands_after : int;
      latches_before : int;
      latches_after : int;
    }
  | Share of { worker : int; exported : int; imported : int; dropped : int }
  | Step of { lane : int; engine : string; n : int; pos : int; status : string }

type t = { ts : float; dom : int; seq : int; kind : kind }

let cause_name = function
  | Race_won -> "winner"
  | Deadline -> "deadline"
  | Min_depth -> "min-depth"
  | Exhausted -> "exhausted"

let cause_of_name = function
  | "winner" -> Some Race_won
  | "deadline" -> Some Deadline
  | "min-depth" -> Some Min_depth
  | "exhausted" -> Some Exhausted
  | _ -> None

let cause_code = function Race_won -> 0 | Deadline -> 1 | Min_depth -> 2 | Exhausted -> 3
let cause_of_code = function 0 -> Race_won | 1 -> Deadline | 3 -> Exhausted | _ -> Min_depth

(* --- recording --------------------------------------------------------- *)

type buf = { mutable a : int array; mutable len : int }

let mk_buf () = { a = Array.make 256 0; len = 0 }

let push b x =
  if b.len = Array.length b.a then begin
    let a' = Array.make (2 * b.len) 0 in
    Array.blit b.a 0 a' 0 b.len;
    b.a <- a'
  end;
  b.a.(b.len) <- x;
  b.len <- b.len + 1

type recorder = {
  mutable strings : string array; (* id -> string *)
  mutable nstrings : int;
  ids : (string, int) Hashtbl.t;
  bufs : (int, buf) Hashtbl.t; (* domain id -> packed stream *)
  mutable nevents : int;
  lock : Mutex.t;
}

let recorder () =
  {
    strings = Array.make 16 "";
    nstrings = 0;
    ids = Hashtbl.create 16;
    bufs = Hashtbl.create 4;
    nevents = 0;
    lock = Mutex.create ();
  }

(* Call under [r.lock]. *)
let intern r s =
  match Hashtbl.find_opt r.ids s with
  | Some id -> id
  | None ->
    if r.nstrings = Array.length r.strings then begin
      let a' = Array.make (2 * r.nstrings) "" in
      Array.blit r.strings 0 a' 0 r.nstrings;
      r.strings <- a'
    end;
    let id = r.nstrings in
    r.strings.(id) <- s;
    r.nstrings <- id + 1;
    Hashtbl.add r.ids s id;
    id

let buf_of r dom =
  match Hashtbl.find_opt r.bufs dom with
  | Some b -> b
  | None ->
    let b = mk_buf () in
    Hashtbl.add r.bufs dom b;
    b

(* Nanosecond timestamps keep the packed stream all-int without losing
   clock resolution (the process clock starts at 0, so 63 bits last
   centuries). *)
let ns_of_ts ts = int_of_float (ts *. 1e9)
let ts_of_ns ns = float_of_int ns *. 1e-9

let current : recorder option ref = ref None

(* The flight recorder listens through a tap: a second consumer fed the
   same (ts, dom, kind) stream without the packed-buffer cost model.
   [on] is the union flag — [enabled] stays one read whether the
   recorder, the tap, or both are live. *)
let tap : (ts:float -> dom:int -> kind -> unit) option ref = ref None
let on = ref false
let refresh_on () = on := !current <> None || !tap <> None

(* Emissions that found no consumer at all: a call site skipped its
   [enabled] guard, or the consumers were torn down mid-run.  Visible
   through {!dropped} (surfaced as the [obs.dropped] gauge) instead of
   vanishing silently. *)
let dropped_n = Atomic.make 0
let dropped () = Atomic.get dropped_n

let set_recorder r =
  current := Some r;
  refresh_on ()

let clear_recorder () =
  current := None;
  refresh_on ()

let set_tap f =
  tap := Some f;
  refresh_on ()

let clear_tap () =
  tap := None;
  refresh_on ()

let enabled () = !on

let record r ~ts ~dom kind =
  Mutex.protect r.lock (fun () ->
        let b = buf_of r dom in
        let str s = intern r s in
        push b
          (match kind with
          | Restart _ -> 0
          | Reduce _ -> 1
          | Itp_cut _ -> 2
          | Phase _ -> 3
          | Spawn _ -> 4
          | Dispatch _ -> 5
          | Cancel _ -> 6
          | Verdict _ -> 7
          | Analyze _ -> 8
          | Share _ -> 9
          | Step _ -> 10);
        push b (ns_of_ts ts);
        (match kind with
        | Restart { conflicts; decisions; learnt } ->
          push b conflicts;
          push b decisions;
          push b learnt
        | Reduce { kept; dropped; lbd; dead_lbd; dead_uses } ->
          push b kept;
          push b dropped;
          push b (Array.length lbd);
          Array.iter (push b) lbd;
          push b (Array.length dead_lbd);
          Array.iter (push b) dead_lbd;
          push b (Array.length dead_uses);
          Array.iter (push b) dead_uses
        | Itp_cut { cut; support; nodes } ->
          push b cut;
          push b support;
          push b nodes
        | Phase { phase; step; detail } ->
          push b (str phase);
          push b step;
          push b (str detail)
        | Spawn { worker; engines } ->
          push b worker;
          push b (str engines)
        | Dispatch { worker; bound } ->
          push b worker;
          push b bound
        | Cancel { worker; cause; by } ->
          push b worker;
          push b (cause_code cause);
          push b by
        | Verdict { worker; verdict } ->
          push b worker;
          push b (str verdict)
        | Analyze { pass; ands_before; ands_after; latches_before; latches_after } ->
          push b (str pass);
          push b ands_before;
          push b ands_after;
          push b latches_before;
          push b latches_after
        | Share { worker; exported; imported; dropped } ->
          push b worker;
          push b exported;
          push b imported;
          push b dropped
        | Step { lane; engine; n; pos; status } ->
          push b lane;
          push b (str engine);
          push b n;
          push b pos;
          push b (str status));
        r.nevents <- r.nevents + 1)

let emit kind =
  if not !on then Atomic.incr dropped_n
  else begin
    let ts = Clock.now () in
    let dom = (Domain.self () :> int) in
    (match !current with None -> () | Some r -> record r ~ts ~dom kind);
    match !tap with None -> () | Some f -> f ~ts ~dom kind
  end

let count r = Mutex.protect r.lock (fun () -> r.nevents)

(* --- decoding and deterministic merge ----------------------------------- *)

let decode_domain r dom (b : buf) =
  let s id = r.strings.(id) in
  let out = ref [] in
  let seq = ref 0 in
  let i = ref 0 in
  while !i < b.len do
    let code = b.a.(!i) and ts = ts_of_ns b.a.(!i + 1) in
    let p = !i + 2 in
    let kind, next =
      match code with
      | 0 ->
        ( Restart
            { conflicts = b.a.(p); decisions = b.a.(p + 1); learnt = b.a.(p + 2) },
          p + 3 )
      | 1 ->
        let n = b.a.(p + 2) in
        let q = p + 3 + n in
        let nd = b.a.(q) in
        let nu = b.a.(q + 1 + nd) in
        ( Reduce
            {
              kept = b.a.(p);
              dropped = b.a.(p + 1);
              lbd = Array.sub b.a (p + 3) n;
              dead_lbd = Array.sub b.a (q + 1) nd;
              dead_uses = Array.sub b.a (q + 2 + nd) nu;
            },
          q + 2 + nd + nu )
      | 2 ->
        (Itp_cut { cut = b.a.(p); support = b.a.(p + 1); nodes = b.a.(p + 2) }, p + 3)
      | 3 ->
        ( Phase { phase = s b.a.(p); step = b.a.(p + 1); detail = s b.a.(p + 2) },
          p + 3 )
      | 4 -> (Spawn { worker = b.a.(p); engines = s b.a.(p + 1) }, p + 2)
      | 5 -> (Dispatch { worker = b.a.(p); bound = b.a.(p + 1) }, p + 2)
      | 6 ->
        ( Cancel { worker = b.a.(p); cause = cause_of_code b.a.(p + 1); by = b.a.(p + 2) },
          p + 3 )
      | 7 -> (Verdict { worker = b.a.(p); verdict = s b.a.(p + 1) }, p + 2)
      | 8 ->
        ( Analyze
            {
              pass = s b.a.(p);
              ands_before = b.a.(p + 1);
              ands_after = b.a.(p + 2);
              latches_before = b.a.(p + 3);
              latches_after = b.a.(p + 4);
            },
          p + 5 )
      | 9 ->
        ( Share
            {
              worker = b.a.(p);
              exported = b.a.(p + 1);
              imported = b.a.(p + 2);
              dropped = b.a.(p + 3);
            },
          p + 4 )
      | 10 ->
        ( Step
            {
              lane = b.a.(p);
              engine = s b.a.(p + 1);
              n = b.a.(p + 2);
              pos = b.a.(p + 3);
              status = s b.a.(p + 4);
            },
          p + 5 )
      | c -> invalid_arg (Printf.sprintf "Event.decode: bad code %d" c)
    in
    out := { ts; dom; seq = !seq; kind } :: !out;
    incr seq;
    i := next
  done;
  List.rev !out

(* Merged order is a pure function of the recording: (ts, dom, seq) is a
   total order — seq breaks ties inside a domain (the clock is
   monotonic but not strictly), dom breaks ties across domains. *)
let events r =
  Mutex.protect r.lock (fun () ->
      let streams =
        Hashtbl.fold (fun dom b acc -> decode_domain r dom b :: acc) r.bufs []
      in
      List.sort
        (fun a b ->
          if a.ts <> b.ts then compare a.ts b.ts
          else if a.dom <> b.dom then compare a.dom b.dom
          else compare a.seq b.seq)
        (List.concat streams))

(* --- JSONL --------------------------------------------------------------- *)

let json_of_event e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts\":%.6f,\"dom\":%d,\"seq\":%d,\"ev\":" e.ts e.dom e.seq);
  (match e.kind with
  | Restart { conflicts; decisions; learnt } ->
    Buffer.add_string b
      (Printf.sprintf "\"restart\",\"conflicts\":%d,\"decisions\":%d,\"learnt\":%d"
         conflicts decisions learnt)
  | Reduce { kept; dropped; lbd; dead_lbd; dead_uses } ->
    let arr name a =
      Buffer.add_string b (Printf.sprintf ",\"%s\":[" name);
      Array.iteri
        (fun i n ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (string_of_int n))
        a;
      Buffer.add_char b ']'
    in
    Buffer.add_string b (Printf.sprintf "\"reduce\",\"kept\":%d,\"dropped\":%d" kept dropped);
    arr "lbd" lbd;
    if Array.length dead_lbd > 0 then arr "dead_lbd" dead_lbd;
    if Array.length dead_uses > 0 then arr "dead_uses" dead_uses
  | Itp_cut { cut; support; nodes } ->
    Buffer.add_string b
      (Printf.sprintf "\"itp.cut\",\"cut\":%d,\"support\":%d,\"nodes\":%d" cut support
         nodes)
  | Phase { phase; step; detail } ->
    Buffer.add_string b (Printf.sprintf "\"phase\",\"phase\":%s" (Json.quote phase));
    if step >= 0 then Buffer.add_string b (Printf.sprintf ",\"step\":%d" step);
    if detail <> "" then
      Buffer.add_string b (Printf.sprintf ",\"detail\":%s" (Json.quote detail))
  | Spawn { worker; engines } ->
    Buffer.add_string b
      (Printf.sprintf "\"spawn\",\"worker\":%d,\"engines\":%s" worker
         (Json.quote engines))
  | Dispatch { worker; bound } ->
    Buffer.add_string b (Printf.sprintf "\"dispatch\",\"worker\":%d,\"bound\":%d" worker bound)
  | Cancel { worker; cause; by } ->
    Buffer.add_string b
      (Printf.sprintf "\"cancel\",\"worker\":%d,\"cause\":\"%s\",\"by\":%d" worker
         (cause_name cause) by)
  | Verdict { worker; verdict } ->
    Buffer.add_string b
      (Printf.sprintf "\"verdict\",\"worker\":%d,\"verdict\":%s" worker
         (Json.quote verdict))
  | Analyze { pass; ands_before; ands_after; latches_before; latches_after } ->
    Buffer.add_string b
      (Printf.sprintf
         "\"analyze\",\"pass\":%s,\"ands_before\":%d,\"ands_after\":%d,\"latches_before\":%d,\"latches_after\":%d"
         (Json.quote pass) ands_before ands_after latches_before latches_after)
  | Share { worker; exported; imported; dropped } ->
    Buffer.add_string b
      (Printf.sprintf
         "\"share\",\"worker\":%d,\"exported\":%d,\"imported\":%d,\"dropped\":%d" worker
         exported imported dropped)
  | Step { lane; engine; n; pos; status } ->
    Buffer.add_string b
      (Printf.sprintf
         "\"step\",\"lane\":%d,\"engine\":%s,\"n\":%d,\"pos\":%d,\"status\":%s" lane
         (Json.quote engine) n pos (Json.quote status)));
  Buffer.add_char b '}';
  Buffer.contents b

(* The lowest header version that covers the stream: older readers must
   keep loading recordings that use none of the newer features. *)
let schema_needed evs =
  let has p = List.exists (fun e -> p e.kind) evs in
  if has (function Step _ -> true | _ -> false) then schema_version
  else if
    has (function Share _ | Cancel { cause = Exhausted; _ } -> true | _ -> false)
  then 3
  else 2

let write_jsonl r oc =
  let evs = events r in
  output_string oc
    (Printf.sprintf "{\"stream\":\"isr-events\",\"schema\":%d}\n" (schema_needed evs));
  List.iter
    (fun e ->
      output_string oc (json_of_event e);
      output_char oc '\n')
    evs

let event_of_json j =
  match Json.field "ev" j with
  | None -> None
  | Some (Json.Str ev) -> (
    let num name = int_of_float (Json.num_field name j) in
    let onum name = Option.value ~default:(-1) (Json.opt_int_field name j) in
    let ostr name = Option.value ~default:"" (Json.opt_str_field name j) in
    let kind =
      match ev with
      | "restart" ->
        Some
          (Restart
             { conflicts = num "conflicts"; decisions = num "decisions"; learnt = num "learnt" })
      | "reduce" ->
        (* Missing arrays decode as empty, which is also how schema-1
           lines (no dead_* fields) stay loadable. *)
        let arr name =
          match Json.field name j with
          | Some (Json.Arr xs) ->
            Array.of_list
              (List.filter_map
                 (function Json.Num f -> Some (int_of_float f) | _ -> None)
                 xs)
          | _ -> [||]
        in
        Some
          (Reduce
             {
               kept = num "kept";
               dropped = num "dropped";
               lbd = arr "lbd";
               dead_lbd = arr "dead_lbd";
               dead_uses = arr "dead_uses";
             })
      | "itp.cut" ->
        Some (Itp_cut { cut = num "cut"; support = num "support"; nodes = num "nodes" })
      | "phase" ->
        Some (Phase { phase = Json.str_field "phase" j; step = onum "step"; detail = ostr "detail" })
      | "spawn" -> Some (Spawn { worker = num "worker"; engines = ostr "engines" })
      | "dispatch" -> Some (Dispatch { worker = num "worker"; bound = num "bound" })
      | "cancel" -> (
        match cause_of_name (Json.str_field "cause" j) with
        | Some cause -> Some (Cancel { worker = num "worker"; cause; by = num "by" })
        | None -> None)
      | "verdict" ->
        Some (Verdict { worker = num "worker"; verdict = Json.str_field "verdict" j })
      | "analyze" ->
        Some
          (Analyze
             {
               pass = Json.str_field "pass" j;
               ands_before = num "ands_before";
               ands_after = num "ands_after";
               latches_before = num "latches_before";
               latches_after = num "latches_after";
             })
      | "share" ->
        Some
          (Share
             {
               worker = num "worker";
               exported = num "exported";
               imported = num "imported";
               dropped = num "dropped";
             })
      | "step" ->
        Some
          (Step
             {
               lane = num "lane";
               engine = ostr "engine";
               n = num "n";
               pos = num "pos";
               status = ostr "status";
             })
      | _ -> None
    in
    match kind with
    | Some kind ->
      Some { ts = Json.num_field "ts" j; dom = num "dom"; seq = onum "seq"; kind }
    | None -> None)
  | Some _ -> None

let read_jsonl path =
  let ic =
    try open_in path with Sys_error msg -> failwith ("Event.read_jsonl: " ^ msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             match Json.parse line with
             | exception Json.Parse_error _ -> ()
             | j -> (
               match Json.field "stream" j with
               | Some (Json.Str "isr-events") ->
                 let v = int_of_float (Json.num_field "schema" j) in
                 if v < min_schema_version || v > schema_version then
                   failwith
                     (Printf.sprintf
                        "Event.read_jsonl %s: unsupported schema %d (expected %d..%d)" path
                        v min_schema_version schema_version)
               | _ -> (
                 match event_of_json j with Some e -> out := e :: !out | None -> ()))
           end
         done
       with End_of_file -> ());
      List.rev !out)

(* --- Chrome export --------------------------------------------------------- *)

let chrome_name = function
  | Restart _ -> "restart"
  | Reduce _ -> "db.reduce"
  | Itp_cut { cut; _ } -> Printf.sprintf "itp.cut %d" cut
  | Phase { phase; step; _ } ->
    if step >= 0 then Printf.sprintf "%s %d" phase step else phase
  | Spawn { worker; _ } -> Printf.sprintf "spawn w%d" worker
  | Dispatch { worker; bound } -> Printf.sprintf "w%d: bound %d" worker bound
  | Cancel { worker; cause; _ } ->
    Printf.sprintf "cancel w%d (%s)" worker (cause_name cause)
  | Verdict { worker; verdict } -> Printf.sprintf "w%d wins: %s" worker verdict
  | Analyze { pass; ands_before; ands_after; _ } ->
    Printf.sprintf "analyze.%s %d->%d" pass ands_before ands_after
  | Share { worker; exported; imported; _ } ->
    Printf.sprintf "share w%d %d>/%d<" worker exported imported
  | Step { lane; engine; pos; _ } -> Printf.sprintf "step L%d %s @%d" lane engine pos

let to_chrome evs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i e ->
      Chrome.add_event b ~first:(i = 0) ~ph:"i" ~name:(chrome_name e.kind) ~tid:e.dom
        ~ts:e.ts
        [ ("json", json_of_event e) ])
    evs;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
