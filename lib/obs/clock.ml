let t0 = Unix.gettimeofday ()
let last = ref 0.0

let now () =
  let t = Unix.gettimeofday () -. t0 in
  if t > !last then last := t;
  !last

let now_us () = now () *. 1e6
