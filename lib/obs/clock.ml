let t0 = Unix.gettimeofday ()

(* Monotonicity guard shared by every domain: a stale read only makes
   the CAS-free update a no-op, so concurrent callers still observe a
   non-decreasing clock. *)
let last = Atomic.make 0.0

let now () =
  let t = Unix.gettimeofday () -. t0 in
  let l = Atomic.get last in
  if t > l then begin
    Atomic.set last t;
    t
  end
  else l

let now_us () = now () *. 1e6
