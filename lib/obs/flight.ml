(* Flight recorder; see the .mli for the model.

   Concurrency: the rings are filled through the Event tap from every
   racing domain, so all ring state lives under one mutex (the tap fires
   at the solver's coarse cadence — restarts, reductions, phases — not
   per propagation).  Signal handlers are the delicate part: OCaml runs
   them at safe points inside normal code, which may be *inside* the
   ring lock's critical section on this very thread, so a handler that
   blocked on the lock would self-deadlock.  Handlers therefore record a
   pending request and attempt the dump with [Mutex.try_lock]; a
   contended lock defers the dump to the next [poll] from an engine's
   cancellation hook. *)

type snap = {
  s_ts : float;
  heap_words : int;
  minor_words : float;
  minor_collections : int;
  major_collections : int;
}

type ring = { evs : Event.t array; mutable n : int }

type state = {
  capacity : int;
  dir : string;
  lock : Mutex.t;
  rings : (int, ring) Hashtbl.t; (* domain id -> ring *)
  mutable recorded : int;
  mutable evicted : int;
  mutable snaps : snap list; (* newest first, capped *)
  mutable nsnaps : int;
  mutable last_snap : float;
}

type meta = {
  reason : string;
  recorded : int;
  evicted : int;
  capacity : int;
  domains : int;
}

let default_capacity = 256
let max_snaps = 64

let state : state option ref = ref None
let pending : string option Atomic.t = Atomic.make None

(* Budget expiry re-raises through every engine layer, and each raise
   site dumps; collapse the storm to one file write per second. *)
let last_dump : (string * float * string) ref = ref ("", neg_infinity, "")

let dummy_event =
  { Event.ts = 0.0; dom = 0; seq = -1; kind = Event.Phase { phase = ""; step = -1; detail = "" } }

let armed () = !state <> None
let recorded () = match !state with None -> 0 | Some st -> st.recorded
let evicted () = match !state with None -> 0 | Some st -> st.evicted

let ring_of (st : state) dom =
  match Hashtbl.find_opt st.rings dom with
  | Some r -> r
  | None ->
    let r = { evs = Array.make st.capacity dummy_event; n = 0 } in
    Hashtbl.add st.rings dom r;
    r

let take_snap (st : state) ts =
  st.last_snap <- ts;
  let g = Gc.quick_stat () in
  let s =
    {
      s_ts = ts;
      heap_words = g.Gc.heap_words;
      minor_words = g.Gc.minor_words;
      minor_collections = g.Gc.minor_collections;
      major_collections = g.Gc.major_collections;
    }
  in
  st.snaps <- s :: (if st.nsnaps >= max_snaps then List.filteri (fun i _ -> i < max_snaps - 1) st.snaps else st.snaps);
  st.nsnaps <- min (st.nsnaps + 1) max_snaps

(* Called under [st.lock]. *)
let record_locked (st : state) ~ts ~dom kind =
  let r = ring_of st dom in
  let seq = r.n in
  r.evs.(seq mod st.capacity) <- { Event.ts; dom; seq; kind };
  if seq >= st.capacity then st.evicted <- st.evicted + 1;
  r.n <- seq + 1;
  st.recorded <- st.recorded + 1;
  if ts -. st.last_snap >= 1.0 then take_snap st ts

(* Called under [st.lock]: each ring's live window in emission order. *)
let ring_events (st : state) =
  Hashtbl.fold
    (fun _dom r acc ->
      let len = min r.n st.capacity in
      let first = r.n - len in
      let out = ref acc in
      for i = first to r.n - 1 do
        out := r.evs.(i mod st.capacity) :: !out
      done;
      !out)
    st.rings []

let sort_events =
  List.sort (fun (a : Event.t) (b : Event.t) ->
      if a.Event.ts <> b.Event.ts then compare a.Event.ts b.Event.ts
      else if a.Event.dom <> b.Event.dom then compare a.Event.dom b.Event.dom
      else compare a.Event.seq b.Event.seq)

let events () =
  match !state with
  | None -> []
  | Some st -> sort_events (Mutex.protect st.lock (fun () -> ring_events st))

let json_of_snap s =
  Printf.sprintf
    "{\"snap\":{\"ts\":%.6f,\"heap_words\":%d,\"minor_words\":%.0f,\"minor_collections\":%d,\"major_collections\":%d}}"
    s.s_ts s.heap_words s.minor_words s.minor_collections s.major_collections

(* File IO happens outside the ring lock, on a snapshot of the state.
   Torn-tail safety comes from the rename: a dump interrupted mid-write
   leaves the previous complete file (or nothing), never half a line. *)
let write_dump ~reason (st : state) evs snaps =
  let path = Filename.concat st.dir "flight.jsonl" in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc
          (Printf.sprintf "{\"stream\":\"isr-events\",\"schema\":%d}\n" Event.schema_version);
        output_string oc
          (Printf.sprintf
             "{\"flight\":{\"reason\":%s,\"recorded\":%d,\"evicted\":%d,\"capacity\":%d,\"domains\":%d}}\n"
             (Json.quote reason) st.recorded st.evicted st.capacity
             (Hashtbl.length st.rings));
        (* Merge GC snapshots into the event timeline by timestamp, so a
           reader scrolling the tail sees memory next to the search. *)
        let rec interleave evs snaps =
          match (evs, snaps) with
          | [], [] -> ()
          | (e : Event.t) :: evs', s :: _ when e.Event.ts <= s.s_ts ->
            output_string oc (Event.json_of_event e);
            output_char oc '\n';
            interleave evs' snaps
          | (e : Event.t) :: evs', [] ->
            output_string oc (Event.json_of_event e);
            output_char oc '\n';
            interleave evs' snaps
          | evs, s :: snaps' ->
            output_string oc (json_of_snap s);
            output_char oc '\n';
            interleave evs snaps'
        in
        interleave evs snaps);
    Sys.rename tmp path;
    Some path
  with Sys_error _ -> None

let dump_of_snapshot ~reason st evs snaps =
  let r, t, p = !last_dump in
  let now = Clock.now () in
  if r = reason && now -. t < 1.0 then Some p
  else
    match write_dump ~reason st evs snaps with
    | Some path ->
      last_dump := (reason, now, path);
      Some path
    | None -> None

let dump ~reason () =
  match !state with
  | None -> None
  | Some st ->
    let evs, snaps =
      Mutex.protect st.lock (fun () -> (ring_events st, List.rev st.snaps))
    in
    dump_of_snapshot ~reason st (sort_events evs) snaps

(* Handler-side dump: never block.  On contention the request stays
   pending for the next [poll]. *)
let try_dump ~reason () =
  match !state with
  | None -> Atomic.set pending None
  | Some st ->
    if Mutex.try_lock st.lock then begin
      let evs, snaps =
        Fun.protect
          ~finally:(fun () -> Mutex.unlock st.lock)
          (fun () -> (ring_events st, List.rev st.snaps))
      in
      Atomic.set pending None;
      ignore (dump_of_snapshot ~reason st (sort_events evs) snaps)
    end

let poll () =
  match Atomic.get pending with
  | None -> ()
  | Some reason -> try_dump ~reason ()

let arm ?(capacity = default_capacity) ~dir () =
  let capacity = max 1 capacity in
  (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  let st =
    {
      capacity;
      dir;
      lock = Mutex.create ();
      rings = Hashtbl.create 4;
      recorded = 0;
      evicted = 0;
      snaps = [];
      nsnaps = 0;
      last_snap = neg_infinity;
    }
  in
  state := Some st;
  Atomic.set pending None;
  Event.set_tap (fun ~ts ~dom kind ->
      match !state with
      | None -> ()
      | Some st -> Mutex.protect st.lock (fun () -> record_locked st ~ts ~dom kind))

let disarm () =
  Event.clear_tap ();
  state := None;
  Atomic.set pending None

let install_signals () =
  let request reason =
    Atomic.set pending (Some reason);
    try_dump ~reason ()
  in
  ignore (Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> request "sigusr1")));
  ignore
    (Sys.signal Sys.sigterm
       (Sys.Signal_handle
          (fun _ ->
            request "sigterm";
            exit 143)))

let guard f =
  try f ()
  with e when armed () ->
    let bt = Printexc.get_raw_backtrace () in
    ignore (dump ~reason:("exception:" ^ Printexc.exn_slot_name e) ());
    Printexc.raise_with_backtrace e bt

let read path =
  let events = Event.read_jsonl path in
  let meta = ref None in
  let ic = try open_in path with Sys_error msg -> failwith ("Flight.read: " ^ msg) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while !meta = None do
          let line = input_line ic in
          if String.trim line <> "" then
            match Json.parse line with
            | exception Json.Parse_error _ -> ()
            | j -> (
              match Json.field "flight" j with
              | Some fj ->
                meta :=
                  Some
                    {
                      reason = Option.value ~default:"" (Json.opt_str_field "reason" fj);
                      recorded = Option.value ~default:0 (Json.opt_int_field "recorded" fj);
                      evicted = Option.value ~default:0 (Json.opt_int_field "evicted" fj);
                      capacity = Option.value ~default:0 (Json.opt_int_field "capacity" fj);
                      domains = Option.value ~default:0 (Json.opt_int_field "domains" fj);
                    }
              | None -> ())
        done
      with End_of_file -> ());
  (!meta, events)
