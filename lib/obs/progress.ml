(* Live progress heartbeats.  Engines post ticks (bound advanced, frame
   pushed, refinement, solver restart) through the global [beat]; an
   installed reporter rate-limits them to one rendered line per
   configured interval and renders for the output at hand: single-line
   rewrite on a TTY, one line per heartbeat when piped, or JSON lines
   for tooling.  Each accepted heartbeat also samples the GC through
   [Resource], so memory tracks time in the run's registry. *)

type tick = {
  phase : string;
  step : int option;
  total : int option;
  detail : string;
  conflicts : int;
  propagations : int;
  learnt : int;
}

let mk_tick ?step ?total ?(detail = "") ?(conflicts = 0) ?(propagations = 0) ?(learnt = 0)
    phase =
  { phase; step; total; detail; conflicts; propagations; learnt }

type mode = Tty | Plain | Jsonl

type reporter = {
  mode : mode;
  interval : float;
  clock : unit -> float;
  write : string -> unit;
  width : int; (* TTY columns; rewrites are clamped to width - 1 *)
  t0 : float;
  lock : Mutex.t; (* ticks arrive from every racing domain *)
  mutable last_emit : float; (* negative: nothing emitted yet *)
  mutable last_conflicts : int;
  mutable last_time : float;
  mutable emitted : int;
  mutable dirty : bool; (* a TTY line is pending termination *)
}

(* A rewritten line longer than the terminal wraps, and the next [\r]
   then rewrites only the last visual row — every earlier row stays
   behind as garbage.  Clamp to the terminal width instead (COLUMNS per
   POSIX; 80 when absent or nonsense, as on most CI runners). *)
let default_width () =
  match Sys.getenv_opt "COLUMNS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n > 1 -> n | _ -> 80)
  | None -> 80

let make ?(clock = Clock.now) ?(interval = 1.0) ?width ~mode write =
  let t0 = clock () in
  let width =
    match width with Some w when w > 1 -> w | Some _ -> 80 | None -> default_width ()
  in
  {
    mode;
    interval;
    clock;
    write;
    width;
    t0;
    lock = Mutex.create ();
    last_emit = Float.neg_infinity;
    last_conflicts = 0;
    last_time = t0;
    emitted = 0;
    dirty = false;
  }

let emitted r = r.emitted

let json_escape = Json.escape

(* 1234567 -> "1.2M": heartbeats are for eyeballs, the registry keeps
   the exact numbers. *)
let human n =
  if n >= 10_000_000 then Printf.sprintf "%dM" (n / 1_000_000)
  else if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%dk" (n / 1000)
  else string_of_int n

let render r t now =
  let elapsed = now -. r.t0 in
  match r.mode with
  | Jsonl ->
    let b = Buffer.create 128 in
    Buffer.add_string b (Printf.sprintf "{\"t\":%.3f,\"phase\":\"%s\"" elapsed (json_escape t.phase));
    (match t.step with Some s -> Buffer.add_string b (Printf.sprintf ",\"step\":%d" s) | None -> ());
    (match t.total with Some s -> Buffer.add_string b (Printf.sprintf ",\"total\":%d" s) | None -> ());
    if t.detail <> "" then
      Buffer.add_string b (Printf.sprintf ",\"detail\":\"%s\"" (json_escape t.detail));
    Buffer.add_string b
      (Printf.sprintf ",\"conflicts\":%d,\"propagations\":%d,\"learnt\":%d}" t.conflicts
         t.propagations t.learnt);
    Buffer.contents b
  | Tty | Plain ->
    let b = Buffer.create 128 in
    Buffer.add_string b (Printf.sprintf "[%6.1fs] %s" elapsed t.phase);
    (match (t.step, t.total) with
    | Some s, Some n -> Buffer.add_string b (Printf.sprintf " %d/%d" s n)
    | Some s, None -> Buffer.add_string b (Printf.sprintf " %d" s)
    | None, _ -> ());
    if t.detail <> "" then Buffer.add_string b (" " ^ t.detail);
    if t.conflicts > 0 then begin
      Buffer.add_string b (Printf.sprintf "  confl %s" (human t.conflicts));
      let dt = now -. r.last_time in
      if dt > 0.0 && t.conflicts >= r.last_conflicts && r.emitted > 0 then
        Buffer.add_string b
          (Printf.sprintf " (%s/s)" (human (int_of_float (float_of_int (t.conflicts - r.last_conflicts) /. dt))));
      if t.propagations > 0 then
        Buffer.add_string b (Printf.sprintf " prop %s" (human t.propagations));
      if t.learnt > 0 then Buffer.add_string b (Printf.sprintf " learnt %s" (human t.learnt))
    end;
    Buffer.contents b

let write_line r line =
  match r.mode with
  | Tty ->
    (* Clamp to width - 1 (writing the last column would auto-wrap on
       most terminals); the trailing erase-to-EOL wipes whatever a
       longer previous line left behind. *)
    let line =
      if String.length line >= r.width then String.sub line 0 (r.width - 1) else line
    in
    r.write ("\r" ^ line ^ "\027[K");
    r.dirty <- true
  | Plain | Jsonl -> r.write (line ^ "\n")

let force_unlocked r t =
  let now = r.clock () in
  write_line r (render r t now);
  r.last_emit <- now;
  r.last_conflicts <- t.conflicts;
  r.last_time <- now;
  r.emitted <- r.emitted + 1;
  Resource.sample ()

let force r t = Mutex.protect r.lock (fun () -> force_unlocked r t)

let emit r t =
  Mutex.protect r.lock (fun () ->
      let now = r.clock () in
      if now -. r.last_emit >= r.interval then begin
        force_unlocked r t;
        true
      end
      else false)

let finish r =
  Mutex.protect r.lock (fun () ->
      if r.dirty then begin
        r.write "\n";
        r.dirty <- false
      end)

(* --- global reporter ------------------------------------------------------- *)

let current : reporter option ref = ref None

let set_reporter r = current := Some r
let enabled () = !current <> None

let clear_reporter () =
  (match !current with Some r -> finish r | None -> ());
  current := None

let beat t = match !current with Some r -> ignore (emit r t) | None -> ()

let tick ?step ?total ?detail ?conflicts ?propagations ?learnt phase =
  match !current with
  | None -> ()
  | Some r ->
    ignore (emit r (mk_tick ?step ?total ?detail ?conflicts ?propagations ?learnt phase))

(* --- CLI conveniences ------------------------------------------------------ *)

let auto_mode ?(fd = Unix.stderr) () = if Unix.isatty fd then Tty else Plain

let with_stderr ?clock ?interval ?width mode f =
  let write s =
    output_string stderr s;
    flush stderr
  in
  set_reporter (make ?clock ?interval ?width ~mode write);
  Fun.protect ~finally:clear_reporter f
