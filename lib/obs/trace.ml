type args = (string * string) list

type event =
  | Begin of { name : string; ts : float; tid : int; args : args }
  | End of { ts : float; tid : int; args : args }
  | Instant of { name : string; ts : float; tid : int; args : args }

type sink = { emit : event -> unit; flush : unit -> unit }

let null = { emit = ignore; flush = (fun () -> ()) }

(* The enabled flag is the whole fast path: [span] tests it once and,
   when false, tail-calls the thunk without touching the sink. *)
let current = ref null
let on = ref false

(* One emission lock for every installed sink: spans may be emitted from
   several domains at once (the parallel portfolio), and the sinks —
   Chrome buffers, the memory sink, profile collectors — are plain
   mutable structures.  The lock is only ever taken when a sink is
   installed, so the disabled fast path stays lock-free. *)
let lock = Mutex.create ()

let event_tid () = (Domain.self () :> int)

let set_sink s =
  current := s;
  on := s != null

let clear_sink () =
  current := null;
  on := false

let enabled () = !on
let flush () = Mutex.protect lock (fun () -> !current.flush ())

let memory () =
  let events = ref [] in
  let sink = { emit = (fun e -> events := e :: !events); flush = (fun () -> ()) } in
  (sink, fun () -> List.rev !events)

let tee a b =
  {
    emit =
      (fun e ->
        a.emit e;
        b.emit e);
    flush =
      (fun () ->
        a.flush ();
        b.flush ());
  }

(* --- Chrome trace-event JSON --------------------------------------------- *)

(* The emitting domain becomes the Chrome thread id (via {!Chrome}), so
   the parallel portfolio renders as one lane per domain instead of one
   garbled lane of interleaved begins/ends. *)
let chrome_event b ~first e =
  match e with
  | Begin { name; ts; tid; args } -> Chrome.add_event b ~first ~ph:"B" ~name ~tid ~ts args
  | End { ts; tid; args } -> Chrome.add_event b ~first ~ph:"E" ~tid ~ts args
  | Instant { name; ts; tid; args } -> Chrome.add_event b ~first ~ph:"i" ~name ~tid ~ts args

(* Closing the top-level array must be idempotent: [flush] is routinely
   reached twice (once by the tracing scope, once by a [Fun.protect]
   finaliser), and a second "]" would corrupt the file.  Events arriving
   after the close are dropped. *)
let chrome buf =
  Buffer.add_string buf "[\n";
  let first = ref true in
  let closed = ref false in
  {
    emit =
      (fun e ->
        if not !closed then begin
          chrome_event buf ~first:!first e;
          first := false
        end);
    flush =
      (fun () ->
        if not !closed then begin
          closed := true;
          Buffer.add_string buf "\n]\n"
        end);
  }

let chrome_channel oc =
  let buf = Buffer.create 256 in
  let sink = chrome buf in
  let closed = ref false in
  {
    emit =
      (fun e ->
        sink.emit e;
        if Buffer.length buf > 65536 then begin
          Buffer.output_buffer oc buf;
          Buffer.clear buf
        end);
    flush =
      (fun () ->
        if not !closed then begin
          closed := true;
          sink.flush ();
          Buffer.output_buffer oc buf;
          Buffer.clear buf;
          Stdlib.flush oc
        end);
  }

(* --- emission -------------------------------------------------------------- *)

(* Called at every span boundary while tracing is enabled; Resource
   hooks GC sampling in here.  Kept out of the disabled fast path, and
   outside the emission lock: the hook samples the calling domain's own
   attached registry. *)
let boundary_hook : (unit -> unit) ref = ref (fun () -> ())

let set_boundary_hook f = boundary_hook := f
let clear_boundary_hook () = boundary_hook := fun () -> ()

let emit e = Mutex.protect lock (fun () -> !current.emit e)

let begin_span ?(args = []) name =
  if !on then begin
    !boundary_hook ();
    emit (Begin { name; ts = Clock.now (); tid = event_tid (); args })
  end

let end_span ?(args = []) () =
  if !on then begin
    !boundary_hook ();
    emit (End { ts = Clock.now (); tid = event_tid (); args })
  end

let instant ?(args = []) name =
  if !on then emit (Instant { name; ts = Clock.now (); tid = event_tid (); args })

let span ?args ?end_args name f =
  if not !on then f ()
  else begin
    begin_span ?args name;
    match f () with
    | v ->
      let args = match end_args with None -> [] | Some g -> g () in
      end_span ~args ();
      v
    | exception e ->
      end_span ~args:[ ("exception", Printexc.exn_slot_name e) ] ();
      raise e
  end
