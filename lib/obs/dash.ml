(* Dashboard model for [isr_obs top]; see the .mli.  The fold reuses the
   attribution rules of explain-race: lifecycle events ([Spawn],
   [Dispatch], [Cancel], [Verdict]) name their worker explicitly, and a
   [Spawn] binds its emitting domain to that worker so the dom-only
   solver events land in the right lane. *)

type lane = {
  worker : int;
  engines : string;
  bound : int;
  conflicts : int;
  learnt : int;
  restarts : int;
  reduces : int;
  kept : int;
  rate : float;
  phase : string;
  cuts : int;
  exported : int;
  imported : int;
  verdict : string option;
  cancelled : (Event.cause * int) option;
  last_ts : float;
}

type view = {
  t0 : float;
  t_end : float;
  lanes : lane list;
  total : int;
  winner : (int * string) option;
}

(* Mutable fold accumulator; flattened into the pure [lane] at the end. *)
type acc = {
  mutable a_engines : string;
  mutable a_bound : int;
  mutable a_conflicts : int;
  mutable a_learnt : int;
  mutable a_restarts : int;
  mutable a_reduces : int;
  mutable a_kept : int;
  mutable a_rate : float;
  mutable a_prev_restart : (float * int) option;
  mutable a_phase : string;
  mutable a_cuts : int;
  mutable a_exported : int;
  mutable a_imported : int;
  mutable a_verdict : string option;
  mutable a_cancelled : (Event.cause * int) option;
  mutable a_last_ts : float;
}

let view events =
  let lanes : (int, acc) Hashtbl.t = Hashtbl.create 8 in
  let dom_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let lane w =
    match Hashtbl.find_opt lanes w with
    | Some a -> a
    | None ->
      let a =
        {
          a_engines = "-";
          a_bound = -1;
          a_conflicts = 0;
          a_learnt = 0;
          a_restarts = 0;
          a_reduces = 0;
          a_kept = -1;
          a_rate = 0.0;
          a_prev_restart = None;
          a_phase = "";
          a_cuts = 0;
          a_exported = 0;
          a_imported = 0;
          a_verdict = None;
          a_cancelled = None;
          a_last_ts = 0.0;
        }
      in
      Hashtbl.add lanes w a;
      a
  in
  (* Dom-only events go to the worker their domain was bound to by a
     [Spawn]; unbound domains (sequential streams, or events before the
     binding) get per-domain lanes keyed negatively so the two index
     spaces cannot collide. *)
  let lane_of_dom dom =
    match Hashtbl.find_opt dom_of dom with Some w -> lane w | None -> lane (-1 - dom)
  in
  let t0 = ref infinity and t_end = ref 0.0 and total = ref 0 in
  let winner = ref None in
  List.iter
    (fun (e : Event.t) ->
      incr total;
      if e.Event.ts < !t0 then t0 := e.Event.ts;
      if e.Event.ts > !t_end then t_end := e.Event.ts;
      let touch a = if e.Event.ts > a.a_last_ts then a.a_last_ts <- e.Event.ts in
      match e.Event.kind with
      | Event.Spawn { worker; engines } ->
        Hashtbl.replace dom_of e.Event.dom worker;
        let a = lane worker in
        a.a_engines <- engines;
        touch a
      | Event.Dispatch { worker; bound } ->
        let a = lane worker in
        a.a_bound <- bound;
        touch a
      | Event.Cancel { worker; cause; by } ->
        let a = lane worker in
        if a.a_cancelled = None then a.a_cancelled <- Some (cause, by);
        touch a
      | Event.Verdict { worker; verdict } ->
        let a = lane worker in
        a.a_verdict <- Some verdict;
        winner := Some (worker, verdict);
        touch a
      | Event.Restart { conflicts; learnt; _ } ->
        let a = lane_of_dom e.Event.dom in
        a.a_restarts <- a.a_restarts + 1;
        a.a_conflicts <- conflicts;
        a.a_learnt <- learnt;
        (match a.a_prev_restart with
        | Some (pts, pc) when e.Event.ts > pts ->
          a.a_rate <- float_of_int (conflicts - pc) /. (e.Event.ts -. pts)
        | _ -> ());
        a.a_prev_restart <- Some (e.Event.ts, conflicts);
        touch a
      | Event.Reduce { kept; _ } ->
        let a = lane_of_dom e.Event.dom in
        a.a_reduces <- a.a_reduces + 1;
        a.a_kept <- kept;
        touch a
      | Event.Phase { phase; step; _ } ->
        let a = lane_of_dom e.Event.dom in
        a.a_phase <- phase;
        if step >= 0 then a.a_bound <- step;
        touch a
      | Event.Itp_cut _ ->
        let a = lane_of_dom e.Event.dom in
        a.a_cuts <- a.a_cuts + 1;
        touch a
      | Event.Share { worker; exported; imported; _ } ->
        let a = lane worker in
        a.a_exported <- exported;
        a.a_imported <- imported;
        touch a
      | Event.Step { lane = l; pos; _ } ->
        let a = lane l in
        a.a_bound <- pos;
        touch a
      | Event.Analyze _ -> ())
    events;
  let lanes =
    Hashtbl.fold
      (fun w a rest ->
        {
          worker = w;
          engines = a.a_engines;
          bound = a.a_bound;
          conflicts = a.a_conflicts;
          learnt = a.a_learnt;
          restarts = a.a_restarts;
          reduces = a.a_reduces;
          kept = a.a_kept;
          rate = a.a_rate;
          phase = a.a_phase;
          cuts = a.a_cuts;
          exported = a.a_exported;
          imported = a.a_imported;
          verdict = a.a_verdict;
          cancelled = a.a_cancelled;
          last_ts = a.a_last_ts;
        }
        :: rest)
      lanes []
    (* Worker lanes first in index order, then the per-domain lanes in
       domain order (their keys are [-1 - dom]). *)
    |> List.sort (fun l1 l2 ->
           let key l = if l.worker >= 0 then (0, l.worker) else (1, -1 - l.worker) in
           compare (key l1) (key l2))
  in
  {
    t0 = (if !t0 = infinity then 0.0 else !t0);
    t_end = !t_end;
    lanes;
    total = !total;
    winner = !winner;
  }

(* --- rendering ------------------------------------------------------------ *)

let cause_name = function
  | Event.Race_won -> "winner-verdict"
  | Event.Deadline -> "deadline"
  | Event.Min_depth -> "minimised-depth"
  | Event.Exhausted -> "slate-exhausted"

let si n =
  if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.0fk" (float_of_int n /. 1e3)
  else string_of_int n

let lane_label w = if w >= 0 then Printf.sprintf "w%d" w else Printf.sprintf "d%d" (-1 - w)

let state v l =
  match (l.verdict, l.cancelled) with
  | Some verdict, _ -> "VERDICT " ^ verdict
  | None, Some (cause, by) -> Printf.sprintf "cancelled (%s, by %s)" (cause_name cause) (lane_label by)
  | None, None ->
    (* "Running" only means "was alive at the tail of the stream". *)
    if v.t_end -. l.last_ts < 1.0 then "running"
    else Printf.sprintf "idle %.1fs" (v.t_end -. l.last_ts)

let render ?width ?gc v =
  let width = match width with Some w -> w | None -> Progress.default_width () in
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        let s = if String.length s > width then String.sub s 0 (max 0 width) else s in
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "isr top  %d lanes  %d events  elapsed %.2fs" (List.length v.lanes) v.total
    (v.t_end -. v.t0);
  line "%-4s %-14s %5s %9s %9s %7s %6s %4s %9s %-10s %s" "lane" "engines" "bound"
    "confl" "confl/s" "learnt" "red" "cut" "share" "phase" "state";
  List.iter
    (fun l ->
      line "%-4s %-14s %5s %9s %9s %7s %6s %4s %9s %-10s %s" (lane_label l.worker)
        l.engines
        (if l.bound >= 0 then string_of_int l.bound else "-")
        (si l.conflicts)
        (if l.rate > 0.0 then si (int_of_float l.rate) else "-")
        (si l.learnt)
        (if l.reduces > 0 then Printf.sprintf "%d/%s" l.reduces (si l.kept) else "-")
        (if l.cuts > 0 then string_of_int l.cuts else "-")
        (if l.exported > 0 || l.imported > 0 then
           Printf.sprintf "%s>%s<" (si l.exported) (si l.imported)
         else "-")
        (if l.phase = "" then "-" else l.phase)
        (state v l))
    v.lanes;
  (match v.winner with
  | Some (w, verdict) ->
    line "race: %s published %s at +%.2fs" (lane_label w) verdict (v.t_end -. v.t0)
  | None -> if List.length v.lanes > 1 then line "race: no verdict published yet");
  (match gc with Some g -> line "%s" g | None -> ());
  Buffer.contents b
