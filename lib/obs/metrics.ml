type counter = { mutable c : int }
type gauge = { mutable g : float }

let nbuckets = 64

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float; (* +infinity when empty *)
  mutable max_v : float;
  buckets : int array; (* length [nbuckets] *)
}

type metric = C of counter | G of gauge | H of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let register r name mk =
  match Hashtbl.find_opt r.tbl name with
  | Some m -> m
  | None ->
    let m = mk () in
    Hashtbl.add r.tbl name m;
    r.order <- name :: r.order;
    m

let counter r name =
  match register r name (fun () -> C { c = 0 }) with
  | C c -> c
  | G _ | H _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")

let gauge r name =
  match register r name (fun () -> G { g = 0.0 }) with
  | G g -> g
  | C _ | H _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")

let histogram r name =
  match
    register r name (fun () ->
        H
          {
            count = 0;
            sum = 0.0;
            min_v = Float.infinity;
            max_v = 0.0;
            buckets = Array.make nbuckets 0;
          })
  with
  | H h -> h
  | C _ | G _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is not a histogram")

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let set g v = g.g <- v
let set_max g v = if v > g.g then g.g <- v
let gauge_value g = g.g

let bucket_upper i = Float.ldexp 1.0 i

(* Bucket 0: v <= 1; bucket i: 2^(i-1) < v <= 2^i.  The log2 estimate is
   corrected by neighbourhood checks so floating-point rounding cannot
   misplace exact powers of two. *)
let bucket_of v =
  if Float.is_nan v || v <= 1.0 then 0
  else begin
    let i = ref (int_of_float (Float.ceil (Float.log2 v))) in
    if !i < 1 then i := 1;
    while !i > 1 && bucket_upper (!i - 1) >= v do
      i := !i - 1
    done;
    while !i < nbuckets - 1 && bucket_upper !i < v do
      i := !i + 1
    done;
    !i
  end

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_count h = h.count
let hist_sum h = h.sum
let hist_min h = if h.count = 0 then 0.0 else h.min_v
let hist_max h = h.max_v

let hist_mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

(* Quantile estimate from the log-bucketed counts: find the bucket the
   rank falls into and interpolate linearly inside it.  The bucket edges
   are tightened by the exact min/max, so one-bucket histograms are
   exact and the tails never over-shoot. *)
let hist_quantile h q =
  if h.count = 0 then 0.0
  else if Float.is_nan q then invalid_arg "Metrics.hist_quantile: nan"
    (* The extremes are tracked exactly — pin them rather than trust the
       interpolation's clamping to land there. *)
  else if q <= 0.0 then hist_min h
  else if q >= 1.0 then h.max_v
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int h.count in
    let rec find i cum =
      if i >= nbuckets then nbuckets - 1
      else
        let cum' = cum + h.buckets.(i) in
        if float_of_int cum' >= rank && h.buckets.(i) > 0 then i
        else if cum' >= h.count then i
        else find (i + 1) cum'
    in
    let b = find 0 0 in
    let below = ref 0 in
    for i = 0 to b - 1 do
      below := !below + h.buckets.(i)
    done;
    let n = h.buckets.(b) in
    if n = 0 then hist_min h
    else begin
      let lo = if b = 0 then 0.0 else bucket_upper (b - 1) in
      let hi = bucket_upper b in
      (* Clamp the edges by the observed extremes. *)
      let lo = Float.max lo (Float.min (hist_min h) hi) in
      let hi = Float.min hi (Float.max h.max_v lo) in
      let frac = (rank -. float_of_int !below) /. float_of_int n in
      let frac = Float.max 0.0 (Float.min 1.0 frac) in
      lo +. (frac *. (hi -. lo))
    end
  end

let hist_buckets h =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (bucket_upper i, h.buckets.(i)) :: !acc
  done;
  !acc

let names r = List.rev r.order

let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find src.tbl name with
      | C c -> add (counter into name) c.c
      | G g -> set_max (gauge into name) g.g
      | H h ->
        let dst = histogram into name in
        dst.count <- dst.count + h.count;
        dst.sum <- dst.sum +. h.sum;
        if h.min_v < dst.min_v then dst.min_v <- h.min_v;
        if h.max_v > dst.max_v then dst.max_v <- h.max_v;
        Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) h.buckets)
    (names src)

let float_json = Json.float_
let escape = Json.escape

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  \"";
      Buffer.add_string b (escape name);
      Buffer.add_string b "\": ";
      match Hashtbl.find r.tbl name with
      | C c -> Buffer.add_string b (string_of_int c.c)
      | G g -> Buffer.add_string b (float_json g.g)
      | H h ->
        Buffer.add_string b
          (Printf.sprintf "{\"count\": %d, \"sum\": %s, \"max\": %s, \"buckets\": ["
             h.count (float_json h.sum) (float_json h.max_v));
        List.iteri
          (fun j (le, n) ->
            if j > 0 then Buffer.add_string b ", ";
            Buffer.add_string b (Printf.sprintf "{\"le\": %s, \"n\": %d}" (float_json le) n))
          (hist_buckets h);
        Buffer.add_string b "]}")
    (names r);
  Buffer.add_string b "\n}";
  Buffer.contents b

let pp fmt r =
  List.iter
    (fun name ->
      match Hashtbl.find r.tbl name with
      | C c -> Format.fprintf fmt "%-28s %d@." name c.c
      | G g -> Format.fprintf fmt "%-28s %g@." name g.g
      | H h ->
        let mean = if h.count > 0 then h.sum /. float_of_int h.count else 0.0 in
        Format.fprintf fmt "%-28s count=%d mean=%.1f max=%g@." name h.count mean h.max_v;
        List.iter
          (fun (le, n) -> Format.fprintf fmt "%-28s   le=%g: %d@." "" le n)
          (hist_buckets h))
    (names r)
