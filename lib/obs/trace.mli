(** Nested span tracing on the monotonic clock.

    A global sink receives begin/end/instant events; the default sink is
    {!null} and the fast path is a single flag test — [span] with the
    null sink installed calls its thunk directly and allocates nothing.
    Sinks ship with the library: an in-memory sink for tests and a
    Chrome trace-event JSON sink whose output loads in Perfetto
    (https://ui.perfetto.dev) or chrome://tracing.

    Span arguments are pre-rendered [(key, value)] string pairs; end
    arguments are supplied as a thunk that only runs when tracing is
    enabled, so instrumentation sites pay nothing for building counter
    deltas in the common disabled case.

    Emission is domain-safe: events may arrive from several domains at
    once (the parallel portfolio) and are serialised through one
    emission lock, so sinks never see concurrent [emit] calls.
    Installing or clearing a sink, by contrast, is a single-domain
    affair — do it before spawning workers. *)

type args = (string * string) list

type event =
  | Begin of { name : string; ts : float; tid : int; args : args }
  | End of { ts : float; tid : int; args : args }
  | Instant of { name : string; ts : float; tid : int; args : args }
(** [tid] is the integer id of the emitting domain ({!Domain.self}); the
    Chrome sink renders one lane per domain and {!Profile} keeps one
    span stack per domain, so parallel runs stay well nested. *)

type sink = { emit : event -> unit; flush : unit -> unit }

val null : sink
(** Drops everything. *)

val memory : unit -> sink * (unit -> event list)
(** An in-memory sink and a function returning the events recorded so
    far, in emission order. *)

val tee : sink -> sink -> sink
(** Every event (and flush) goes to both sinks, left first — e.g. a
    Chrome file and a live {!Profile} collector from the same run. *)

val chrome : Buffer.t -> sink
(** Renders Chrome trace-event JSON into the buffer; the first [flush]
    closes the top-level array, further flushes are no-ops and events
    emitted after the close are dropped. *)

val chrome_channel : out_channel -> sink
(** Streams Chrome trace-event JSON to the channel; the first [flush]
    closes the array and flushes the channel, further flushes are
    no-ops (the channel is never written again). *)

val set_sink : sink -> unit
(** Installs a sink and enables tracing (unless it is {!null}). *)

val clear_sink : unit -> unit
(** Back to {!null}; tracing disabled. *)

val enabled : unit -> bool
(** True when a non-null sink is installed.  Callers may use this to
    guard expensive argument construction. *)

val flush : unit -> unit
(** Flushes the current sink. *)

val span : ?args:args -> ?end_args:(unit -> args) -> string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f ()] in a begin/end pair.  [end_args] is
    evaluated after [f] returns normally; when [f] raises, the end event
    carries the exception name instead and the exception is re-raised.
    With tracing disabled this is exactly [f ()]. *)

val instant : ?args:args -> string -> unit
(** A zero-duration marker event. *)

val begin_span : ?args:args -> string -> unit
val end_span : ?args:args -> unit -> unit
(** Explicit bracket for call sites where a function wrapper does not
    fit; the caller owns the pairing discipline. *)

val set_boundary_hook : (unit -> unit) -> unit
val clear_boundary_hook : unit -> unit
(** A callback invoked at every span begin/end while tracing is enabled
    (never on the disabled fast path).  {!Resource} uses it to sample
    the GC at span boundaries; last installer wins. *)
