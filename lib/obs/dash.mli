(** Live multi-domain dashboard model: the [isr_obs top] view.

    Folds a merged event stream into one row per worker (or per domain,
    for sequential runs): engines, current bound, cumulative conflicts
    with a restart-to-restart conflict rate, learnt-database size and
    reductions, last engine phase, and the race outcome — who published
    the verdict, who was cancelled by whom and why.  Pure on both sides
    ([view] consumes decoded events, [render] produces a string), so the
    TTY renderer is unit-testable against canned multi-domain fixtures;
    the CLI re-reads the stream and re-renders for [--follow] mode. *)

type lane = {
  worker : int;      (** worker index from the race lifecycle, or the
                         domain id for sequential streams *)
  engines : string;  (** from [Spawn]; ["-"] when none was seen *)
  bound : int;       (** last dispatched bound / phase step, [-1] none *)
  conflicts : int;   (** cumulative conflicts at the last restart *)
  learnt : int;      (** live learnt clauses at the last restart *)
  restarts : int;
  reduces : int;
  kept : int;        (** survivors of the last reduction, [-1] none *)
  rate : float;      (** conflicts/s between the last two restarts *)
  phase : string;    (** last [Phase] label, [""] none *)
  cuts : int;        (** interpolant cuts extracted *)
  exported : int;    (** clauses exported to the share ring (cumulative,
                         from the last [Share] event; [0] none) *)
  imported : int;    (** peers' clauses imported (cumulative) *)
  verdict : string option;          (** published by this lane *)
  cancelled : (Event.cause * int) option;  (** cause and canceller *)
  last_ts : float;   (** this lane's most recent event *)
}

type view = {
  t0 : float;
  t_end : float;          (** timestamp of the last event *)
  lanes : lane list;      (** sorted by worker index *)
  total : int;            (** events folded *)
  winner : (int * string) option;
      (** last published verdict (bound-parallel minimisation publishes
          several; the last one stands, as in [explain-race]) *)
}

val view : Event.t list -> view
(** Fold a merged stream (as from {!Event.events} / {!Event.read_jsonl})
    into the dashboard model.  Worker attribution: [Spawn] events bind
    their emitting domain to a worker index, and dom-only events
    (restarts, reductions, phases, cuts) follow that binding; streams
    without a race lifecycle get one lane per domain. *)

val lane_label : int -> string
(** ["w3"] for worker lanes, ["d2"] for the per-domain lanes of a
    sequential stream. *)

val render : ?width:int -> ?gc:string -> view -> string
(** Render as a fixed-layout multi-line frame, each line clamped to
    [width] (default {!Progress.default_width}); [gc] is an optional
    pre-formatted gauge line (the CLI fills it from flight-recorder
    snapshots).  Ends with a newline. *)
