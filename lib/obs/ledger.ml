let schema_version = 1

type entry = {
  id : string;
  time : string;
  instance : string;
  instance_hash : string;
  engine : string;
  config : string;
  verdict : string;
  kfp : int option;
  jfp : int option;
  wall_s : float;
  conflicts : int;
  sat_calls : int;
  itp_nodes : int;
  metrics_json : string;
  events_path : string option;
  profile_path : string option;
}

type t = { root : string }

let ledger_file t = Filename.concat t.root "ledger.jsonl"
let events_dir t = Filename.concat t.root "events"
let dir t = t.root

(* Surface directory-creation failures as [Sys_error], like every other
   file operation callers already guard against (unwritable paths must
   be a one-line exit, not a backtrace). *)
let mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path && not (Sys.file_exists parent) then begin
      let rec up p =
        if p <> Filename.dirname p && not (Sys.file_exists p) then begin
          up (Filename.dirname p);
          try Unix.mkdir p 0o755 with
          | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
          | Unix.Unix_error (e, _, _) ->
            raise (Sys_error (p ^ ": " ^ Unix.error_message e))
        end
      in
      up parent
    end;
    try Unix.mkdir path 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  end

let open_ root =
  let t = { root } in
  mkdir_p root;
  mkdir_p (events_dir t);
  t

let fingerprint kvs =
  List.sort (fun (a, _) (b, _) -> compare a b) kvs
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat " "

let resolve t path =
  if Filename.is_relative path then Filename.concat t.root path else path

(* --- JSON ---------------------------------------------------------------- *)

let json_of_entry e =
  let b = Buffer.create 256 in
  let str k v =
    Buffer.add_string b (Printf.sprintf "\"%s\":%s," k (Json.quote v))
  in
  let int k v = Buffer.add_string b (Printf.sprintf "\"%s\":%d," k v) in
  Buffer.add_char b '{';
  str "id" e.id;
  str "time" e.time;
  str "instance" e.instance;
  if e.instance_hash <> "" then str "hash" e.instance_hash;
  str "engine" e.engine;
  if e.config <> "" then str "config" e.config;
  str "verdict" e.verdict;
  (match e.kfp with Some k -> int "kfp" k | None -> ());
  (match e.jfp with Some j -> int "jfp" j | None -> ());
  Buffer.add_string b (Printf.sprintf "\"wall_s\":%s," (Json.float_ e.wall_s));
  int "conflicts" e.conflicts;
  int "sat_calls" e.sat_calls;
  int "itp_nodes" e.itp_nodes;
  (match e.events_path with Some p -> str "events" p | None -> ());
  (match e.profile_path with Some p -> str "profile" p | None -> ());
  if e.metrics_json <> "" then
    (* Already a JSON document: embedded verbatim, not re-quoted. *)
    Buffer.add_string b (Printf.sprintf "\"metrics\":%s," e.metrics_json);
  (* Drop the trailing comma. *)
  Buffer.truncate b (Buffer.length b - 1);
  Buffer.add_char b '}';
  Buffer.contents b

let entry_of_json j =
  match (Json.field "id" j, Json.field "instance" j) with
  | Some (Json.Str id), Some (Json.Str instance) ->
    let ostr name = Option.value ~default:"" (Json.opt_str_field name j) in
    let onum name =
      match Json.field name j with Some (Json.Num f) -> int_of_float f | _ -> 0
    in
    Some
      {
        id;
        time = ostr "time";
        instance;
        instance_hash = ostr "hash";
        engine = ostr "engine";
        config = ostr "config";
        verdict = ostr "verdict";
        kfp = Json.opt_int_field "kfp" j;
        jfp = Json.opt_int_field "jfp" j;
        wall_s = (match Json.field "wall_s" j with Some (Json.Num f) -> f | _ -> 0.0);
        conflicts = onum "conflicts";
        sat_calls = onum "sat_calls";
        itp_nodes = onum "itp_nodes";
        metrics_json =
          (match Json.field "metrics" j with
          | Some m -> Json.render m
          | None -> "");
        events_path = Json.opt_str_field "events" j;
        profile_path = Json.opt_str_field "profile" j;
      }
  | _ -> None

(* --- persistence ----------------------------------------------------------- *)

let count_lines path =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        !n)
  end

let utc_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* A crash can leave the file without its final newline; appending right
   after such a torn tail would weld two records into one unparsable
   line, losing both. *)
let ends_with_newline path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      if len = 0 then true
      else begin
        seek_in ic (len - 1);
        input_char ic = '\n'
      end)

let append t entry =
  let file = ledger_file t in
  let fresh = not (Sys.file_exists file) in
  let n = count_lines file in
  (* The header occupies line 1, so entry ids start at the line count. *)
  let id = Printf.sprintf "r%04d" (if fresh then 1 else max 1 n) in
  let entry =
    { entry with id; time = (if entry.time = "" then utc_now () else entry.time) }
  in
  let repair = (not fresh) && not (ends_with_newline file) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if fresh then
        output_string oc
          (Printf.sprintf "{\"store\":\"isr-ledger\",\"schema\":%d}\n" schema_version);
      if repair then output_char oc '\n';
      output_string oc (json_of_entry entry);
      output_char oc '\n');
  entry

let load t =
  let file = ledger_file t in
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let out = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then begin
               match Json.parse line with
               | exception Json.Parse_error _ -> ()
               | j -> (
                 match Json.field "store" j with
                 | Some (Json.Str "isr-ledger") ->
                   let v = int_of_float (Json.num_field "schema" j) in
                   if v <> schema_version then
                     failwith
                       (Printf.sprintf
                          "Ledger.load %s: unsupported schema %d (expected %d)" file v
                          schema_version)
                 | _ -> (
                   match entry_of_json j with Some e -> out := e :: !out | None -> ()))
             end
           done
         with End_of_file -> ());
        List.rev !out)
  end

let find t id = List.find_opt (fun e -> e.id = id) (load t)
