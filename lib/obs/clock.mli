(** The single time base of the observability layer: wall-clock seconds
    since process start, clamped to be monotonically non-decreasing so
    spans and budgets survive NTP adjustments.  Every engine, the budget
    enforcement and the trace sinks read this clock — CPU time
    ([Sys.time]) is reserved for nothing anymore, so per-engine timings
    and the deadline agree with each other. *)

val now : unit -> float
(** Seconds since the process started, never decreasing. *)

val now_us : unit -> float
(** Same instant in microseconds (the unit of Chrome trace events). *)
