(** GC/memory accounting for verification runs.

    [attach reg] pushes a registry onto the attachment stack; while any
    registry is attached, {!sample} (called by heartbeat reporters and,
    through a {!Trace} boundary hook, at every span begin/end when
    tracing is on) folds a [Gc.quick_stat] into the innermost registry:

    - [gc.heap_words] (gauge) — current major-heap words
    - [gc.peak_heap_words] (gauge, max-kept) — the run's heap high-water mark
    - [gc.minor_words] (counter) — words allocated in the minor heap
    - [gc.minor_collections] / [gc.major_collections] (counters)
    - [gc.minor_alloc_rate] (gauge) — minor words per second since attach

    The stack nests: a portfolio member's registry attaches inside the
    portfolio's, and samples land in the innermost one.  Engines wrap
    their run in {!with_attached}, which also samples once on entry and
    once on exit so short runs still get their final figures. *)

val attach : ?clock:(unit -> float) -> Metrics.t -> unit
(** Push a registry and take an initial sample.  [clock] (default
    {!Clock.now}) only feeds the allocation-rate gauge. *)

val detach : unit -> unit
(** Final sample into the innermost registry, then pop it. *)

val with_attached : ?clock:(unit -> float) -> Metrics.t -> (unit -> 'a) -> 'a
(** [attach]/[detach] bracket, exception-safe. *)

val attached : unit -> bool

val sample : unit -> unit
(** Fold one [Gc.quick_stat] into the innermost attached registry; no-op
    when nothing is attached. *)
