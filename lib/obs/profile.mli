(** Call-tree profiles over span event streams.

    A profile aggregates spans by call path: every node of the tree is a
    span name under its parent chain, with a call count, total wall time
    (children included) and self time (total minus direct children).
    The root is a synthetic ["(root)"] node whose total is the event
    window ([last ts - first ts]) — for a run traced end to end this is
    the run's wall time.

    Build one either from a recorded stream ({!of_events}, e.g. from a
    {!Trace.memory} sink) or live through {!collector}, a sink that
    folds events as they arrive (constant memory in the event count;
    combine with another sink via {!Trace.tee}). *)

type node = {
  name : string;
  calls : int;
  total : float;  (** wall seconds inside this span, children included *)
  self : float;   (** [total] minus the totals of direct children *)
  children : node list;  (** sorted by total, descending *)
}

val of_events : Trace.event list -> node
(** Fold a recorded stream into a profile.  Unbalanced streams are
    tolerated: stray [End]s are dropped and spans still open at the end
    of the stream are charged up to the last seen timestamp. *)

val collector : unit -> Trace.sink * (unit -> node)
(** A live folding sink and its snapshot function.  Snapshots are cheap
    and non-destructive: open spans are charged provisionally, and a
    later snapshot (after more events) supersedes the provisional
    charge. *)

val root_total : node -> float
(** The event-window total of a (root) node. *)

val hot : node -> (string * int * float * float) list
(** Flat per-name aggregation over the whole tree as
    [(name, calls, total, self)], sorted by self time descending.
    Self and calls sum across all occurrences; total skips spans nested
    inside a same-named ancestor, so recursion is not double-charged. *)

val pp : ?top:int -> ?max_depth:int -> ?min_frac:float -> Format.formatter -> node -> unit
(** Text rendering: the call tree (pruned at [max_depth], default 6, and
    below [min_frac] of the root total, default 0.2%) followed by the
    [top] (default 12) hottest span names by self time. *)

val to_json : node -> string
(** Nested JSON: [{"name","calls","total_s","self_s","children":[...]}]. *)
