(** Rate-limited live progress heartbeats.

    Engines post {!tick}s at natural advancement points — a BMC/ITPSEQ
    bound finished, a PDR frame pushed, a CBA refinement, a solver
    restart — each carrying the run's cumulative conflict/propagation/
    learnt-clause counters.  A reporter (installed globally, like a
    {!Trace} sink) renders at most one line per [interval] seconds:

    - [Tty]: a single line rewritten in place ([\r] + erase);
    - [Plain]: one full line per accepted heartbeat (piped output);
    - [Jsonl]: one JSON object per accepted heartbeat.

    Every accepted heartbeat also calls {!Resource.sample}, so GC
    gauges advance with the heartbeat cadence even when tracing is off.
    Without a reporter installed a tick is two loads and a branch. *)

type tick = {
  phase : string;        (** e.g. ["bmc.bound"], ["pdr.frame"], ["sat.restart"] *)
  step : int option;     (** bound k, frame number, run index… *)
  total : int option;    (** when the number of steps is known (suite runs) *)
  detail : string;       (** free-form, e.g. ["vending11/itpseq"] *)
  conflicts : int;       (** cumulative, from the run's registry *)
  propagations : int;
  learnt : int;
}

val mk_tick :
  ?step:int ->
  ?total:int ->
  ?detail:string ->
  ?conflicts:int ->
  ?propagations:int ->
  ?learnt:int ->
  string ->
  tick

type mode = Tty | Plain | Jsonl

type reporter

val default_width : unit -> int
(** The terminal width TTY rewrites are clamped to: [$COLUMNS], falling
    back to 80 (absent or nonsense values, as on most CI runners).  Also
    the default frame width of {!Dash.render}. *)

val make :
  ?clock:(unit -> float) ->
  ?interval:float ->
  ?width:int ->
  mode:mode ->
  (string -> unit) ->
  reporter
(** [make ~mode write] builds a reporter over a line consumer.  [clock]
    (default {!Clock.now}) drives the rate limit and elapsed column;
    [interval] defaults to 1 s.  [width] bounds TTY rewrites (clamped to
    [width - 1] so the line never auto-wraps and leaves stale rows
    behind); it defaults to [$COLUMNS], falling back to 80. *)

val emit : reporter -> tick -> bool
(** Render if at least [interval] elapsed since the last rendered
    heartbeat (the first always renders).  Returns whether it did. *)

val force : reporter -> tick -> unit
(** Render unconditionally. *)

val finish : reporter -> unit
(** Terminate a pending TTY line with a newline; no-op otherwise. *)

val emitted : reporter -> int
(** Heartbeats rendered so far. *)

val set_reporter : reporter -> unit
val clear_reporter : unit -> unit
(** [clear_reporter] also {!finish}es the reporter. *)

val enabled : unit -> bool

val beat : tick -> unit
(** Post to the installed reporter; no-op (and allocation-free apart
    from the tick itself) without one. *)

val tick :
  ?step:int ->
  ?total:int ->
  ?detail:string ->
  ?conflicts:int ->
  ?propagations:int ->
  ?learnt:int ->
  string ->
  unit
(** [beat] with the tick built in place; does not build anything when no
    reporter is installed. *)

val auto_mode : ?fd:Unix.file_descr -> unit -> mode
(** [Tty] when [fd] (default stderr) is a terminal, [Plain] otherwise —
    the [--progress auto] policy of the CLIs. *)

val with_stderr :
  ?clock:(unit -> float) -> ?interval:float -> ?width:int -> mode -> (unit -> 'a) -> 'a
(** Installs a stderr-writing reporter for the extent of the callback
    ({!clear_reporter} runs even on exceptions). *)
