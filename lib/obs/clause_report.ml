(* Clause-lifecycle report; see the .mli.  The metrics side carries the
   authoritative totals (log-bucketed); the event side carries the exact
   16-bucket victim histograms and the reduction timeline.  The
   invariants below are the sum-pinning contract of the analytics: if
   one fails, the instrumentation itself has a bug. *)

type hist = {
  count : int;
  mean : float;
  max_v : float;
  buckets : (float * int) list;
}

type t = {
  born : int;
  deleted : int;
  kept : int;
  reduces : int;
  birth_lbd : hist option;
  uses_at_death : hist option;
  lbd_drift : hist option;
  core_birth_lbd : hist option;
  ev_dead_lbd : int array;
  ev_dead_uses : int array;
  ev_timeline : (float * int * int) list;
  violations : string list;
}

let int_field name j =
  match Json.field name j with
  | Some (Json.Num f) -> Some (int_of_float f)
  | _ -> None

let hist_field name j =
  match Json.field name j with
  | Some (Json.Obj _ as h) ->
    let count = Option.value ~default:0 (int_field "count" h) in
    let sum = match Json.field "sum" h with Some (Json.Num f) -> f | _ -> 0.0 in
    let max_v = match Json.field "max" h with Some (Json.Num f) -> f | _ -> 0.0 in
    let buckets =
      match Json.field "buckets" h with
      | Some (Json.Arr bs) ->
        List.filter_map
          (fun b ->
            match (Json.field "le" b, Json.field "n" b) with
            | Some (Json.Num le), Some (Json.Num n) -> Some (le, int_of_float n)
            | _ -> None)
          bs
      | _ -> []
    in
    Some { count; mean = (if count > 0 then sum /. float_of_int count else 0.0); max_v; buckets }
  | _ -> None

let nbuckets = 16

let of_run ~metrics ~events =
  let geti name = match metrics with None -> 0 | Some j -> Option.value ~default:0 (int_field name j) in
  let hist name = match metrics with None -> None | Some j -> hist_field name j in
  let born = geti "clause.born" in
  let deleted = geti "clause.deleted" in
  let reduces = geti "sat.db.reduce" in
  let birth_lbd = hist "clause.birth_lbd" in
  let uses_at_death = hist "clause.uses_at_death" in
  let lbd_drift = hist "clause.lbd_drift" in
  let core_birth_lbd = hist "clause.core_birth_lbd" in
  let ev_dead_lbd = Array.make nbuckets 0 in
  let ev_dead_uses = Array.make nbuckets 0 in
  let timeline = ref [] in
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Reduce { kept; dropped; lbd = _; dead_lbd; dead_uses } ->
        timeline := (e.Event.ts, kept, dropped) :: !timeline;
        let add dst src = Array.iteri (fun i n -> if i < nbuckets then dst.(i) <- dst.(i) + n) src in
        add ev_dead_lbd dead_lbd;
        add ev_dead_uses dead_uses;
        let sum = Array.fold_left ( + ) 0 in
        (* Per-event pinning: every victim appears in both histograms. *)
        if Array.length dead_lbd > 0 && sum dead_lbd <> dropped then
          bad "reduce event at %.3fs: dead_lbd sums to %d, dropped %d" e.Event.ts
            (sum dead_lbd) dropped;
        if Array.length dead_uses > 0 && sum dead_uses <> dropped then
          bad "reduce event at %.3fs: dead_uses sums to %d, dropped %d" e.Event.ts
            (sum dead_uses) dropped
      | _ -> ())
    events;
  (* Registry-side pinning.  kept + deleted = born by construction; the
     death histograms observe exactly one sample per victim; the proof
     core is a subset of everything ever born. *)
  if deleted > born then bad "deleted (%d) exceeds born (%d)" deleted born;
  (match uses_at_death with
  | Some h when h.count <> deleted ->
    bad "uses_at_death count %d, deleted %d" h.count deleted
  | _ -> ());
  (match lbd_drift with
  | Some h when h.count <> deleted -> bad "lbd_drift count %d, deleted %d" h.count deleted
  | _ -> ());
  (match core_birth_lbd with
  | Some h when h.count > born -> bad "proof-core count %d exceeds born %d" h.count born
  | _ -> ());
  {
    born;
    deleted;
    kept = born - deleted;
    reduces;
    birth_lbd;
    uses_at_death;
    lbd_drift;
    core_birth_lbd;
    ev_dead_lbd;
    ev_dead_uses;
    ev_timeline = List.rev !timeline;
    violations = List.rev !violations;
  }

(* --- rendering ------------------------------------------------------------ *)

(* Registry buckets are cumulative ([le] bounds); de-cumulate into
   per-bucket (le, n) pairs for display and cross-histogram joins. *)
let decumulate buckets =
  let prev = ref 0 in
  List.map
    (fun (le, n) ->
      let d = n - !prev in
      prev := n;
      (le, d))
    buckets

let pp_hist fmt label h =
  Format.fprintf fmt "  %-22s count=%d mean=%.2f max=%g@." label h.count h.mean h.max_v;
  let per = decumulate h.buckets in
  let widest = List.fold_left (fun m (_, n) -> max m n) 1 per in
  List.iter
    (fun (le, n) ->
      if n > 0 then
        Format.fprintf fmt "    le %-6g %6d  %s@." le n
          (String.make (max 1 (40 * n / widest)) '#'))
    per

let pp_exact fmt label a =
  let total = Array.fold_left ( + ) 0 a in
  if total > 0 then begin
    Format.fprintf fmt "  %-22s (exact, from reduce events; total %d)@." label total;
    Array.iteri
      (fun v n ->
        if n > 0 then
          Format.fprintf fmt "    %s%-4d %6d  %s@."
            (if v = Array.length a - 1 then ">=" else "")
            v n
            (String.make (min 40 (1 + (40 * n / total))) '#'))
      a
  end

let pp fmt r =
  Format.fprintf fmt "clause lifecycle:@.";
  Format.fprintf fmt "  born %d, deleted %d, kept %d (%d reductions)@." r.born r.deleted
    r.kept r.reduces;
  (match r.birth_lbd with Some h -> pp_hist fmt "birth LBD" h | None -> ());
  (match r.uses_at_death with Some h -> pp_hist fmt "uses at death" h | None -> ());
  (match r.lbd_drift with Some h -> pp_hist fmt "LBD drift at death" h | None -> ());
  (match (r.core_birth_lbd, r.birth_lbd) with
  | Some core, Some birth ->
    pp_hist fmt "proof core by birth LBD" core;
    if r.born > 0 && core.count > 0 then begin
      (* Join by [le] bound — the two histograms may have been snapshot
         with different bucket counts (the core one stops growing at the
         largest core LBD seen). *)
      Format.fprintf fmt "  core fraction by birth-LBD bucket:@.";
      let core_per = decumulate core.buckets in
      List.iter
        (fun (le, db) ->
          if db > 0 then
            let dc = try List.assoc le core_per with Not_found -> 0 in
            Format.fprintf fmt "    le %-6g %d/%d (%.1f%%)@." le dc db
              (100.0 *. float_of_int dc /. float_of_int db))
        (decumulate birth.buckets)
    end
  | Some core, None -> pp_hist fmt "proof core by birth LBD" core
  | None, _ -> ());
  pp_exact fmt "victims by LBD at death" r.ev_dead_lbd;
  pp_exact fmt "victims by uses" r.ev_dead_uses;
  (match r.ev_timeline with
  | [] -> ()
  | tl ->
    Format.fprintf fmt "  reductions (ts, kept, dropped):@.";
    List.iter (fun (ts, k, d) -> Format.fprintf fmt "    %8.3fs  kept %-7d dropped %d@." ts k d) tl);
  match r.violations with
  | [] -> Format.fprintf fmt "  invariants: ok@."
  | vs ->
    Format.fprintf fmt "  INVARIANT VIOLATIONS:@.";
    List.iter (fun v -> Format.fprintf fmt "    %s@." v) vs
