(** Flight recorder: always-on, constant-memory forensics for runs that
    never reach a clean verdict.

    The ledger and the event log explain a run after it finishes; the
    runs that most need explaining — timeouts, sanitizer violations,
    hung parallel races, kill -9'd batch jobs — are exactly the ones
    that never flush a stream.  The flight recorder closes that gap: a
    per-domain ring buffer taps the {!Event} stream and keeps only the
    most recent [capacity] events per domain (plus periodic GC counter
    snapshots), costing a bounded amount of memory no matter how long
    the run.  On {!Budget} expiry, a sanitizer violation, an uncaught
    exception, or [SIGUSR1]/[SIGTERM], the merged rings are dumped as a
    schema-versioned [flight.jsonl] into the run directory — a forensic
    trail of the last seconds instead of nothing.

    Disabled cost: arming installs the event tap, so {!Event.enabled}
    turns on and guarded call sites start paying the (cheap, coarse)
    emission cost; when not armed the fast path is the same single flag
    read as before and nothing allocates.

    Dump files are torn-tail-safe: written to a temporary sibling and
    renamed into place, so a dump interrupted by a second signal leaves
    either the previous complete file or none — never a torn one.  The
    file is a valid {!Event} JSONL stream (same header, loadable with
    {!Event.read_jsonl} and [isr_obs top]) with one extra [flight] meta
    line and interleaved [snap] GC-snapshot lines, which event readers
    skip. *)

type meta = {
  reason : string;      (** why the dump happened ("sigusr1", "budget.time", ...) *)
  recorded : int;       (** events ever offered to the rings *)
  evicted : int;        (** events overwritten by ring wrap-around *)
  capacity : int;       (** per-domain ring capacity *)
  domains : int;        (** distinct emitting domains seen *)
}

val default_capacity : int
(** Per-domain ring capacity used when [arm] is not given one (256). *)

val arm : ?capacity:int -> dir:string -> unit -> unit
(** Start recording: install the {!Event} tap and signal handlers'
    target state.  Dumps land in [dir ^ "/flight.jsonl"].  Re-arming
    replaces any previous state. *)

val disarm : unit -> unit
(** Stop recording and clear the tap.  Does not dump. *)

val armed : unit -> bool

val recorded : unit -> int
(** Events offered to the rings since [arm] (0 when disarmed). *)

val evicted : unit -> int
(** Events lost to ring wrap-around since [arm] — the flight recorder's
    contribution to the [obs.dropped] gauge. *)

val events : unit -> Event.t list
(** Current merged ring contents, ordered by [(ts, dom, seq)] with each
    domain's own emission order preserved ([seq] is the per-domain
    emission index, so wrap-around keeps ordering honest). *)

val dump : reason:string -> unit -> string option
(** Write the merged rings to [flight.jsonl] in the armed directory and
    return its path; [None] when disarmed.  Atomic rename; safe to call
    repeatedly (repeated dumps with the same reason are throttled to one
    per second — budget expiry re-raises through every engine layer). *)

val poll : unit -> unit
(** Honour a dump requested from a signal handler that could not take
    the ring lock.  One flag read when idle; engines call this from
    their cancellation-poll hooks. *)

val install_signals : unit -> unit
(** Route [SIGUSR1] (dump and continue) and [SIGTERM] (dump, then exit
    143) to the flight recorder.  Handlers never block: they request a
    dump and attempt it with [Mutex.try_lock]; a contended lock defers
    to the next {!poll}. *)

val guard : (unit -> 'a) -> 'a
(** Run a thunk; if it raises while armed, dump with reason
    ["exception:<name>"] and re-raise.  Wrap engine entry points so an
    uncaught exception leaves a trail. *)

val read : string -> meta option * Event.t list
(** Load a dump back: the [flight] meta line (if present) and the
    events, via {!Event.read_jsonl}.
    @raise Failure on unreadable files or schema mismatch. *)
