(* GC/memory accounting: samples [Gc.quick_stat] into the attached
   run's metrics registry so memory joins time as a first-class signal.
   Attachment is a stack — a portfolio member's run nests inside the
   portfolio's — and samples always land in the innermost registry.
   The stack is domain-local: each racing domain attaches its own run's
   registry and samples its own GC counters, so parallel members never
   write into each other's books.  While at least one registry is
   attached anywhere (an atomic count across domains), a Trace boundary
   hook samples at every span begin/end; heartbeat reporters call
   [sample] on their own cadence. *)

module M = Metrics

type handles = {
  reg : M.t;
  g_heap : M.gauge;        (* current major-heap words *)
  g_peak : M.gauge;        (* max heap words seen at any sample *)
  c_minor_words : M.counter;
  c_minor : M.counter;     (* minor collections *)
  c_major : M.counter;     (* major collections *)
  g_rate : M.gauge;        (* minor allocation rate, words/s since attach *)
  g_dropped : M.gauge;     (* unconsumed Event emissions + flight-ring evictions *)
  clock : unit -> float;
  t0 : float;
  base_minor_words : float;
  mutable last_minor_words : float;
  mutable last_minor : int;
  mutable last_major : int;
}

let attached_stack : handles list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

(* Domains with a non-empty stack; governs the global boundary hook. *)
let active = Atomic.make 0

let attached () = Domain.DLS.get attached_stack <> []

(* [Gc.quick_stat] only accounts minor words up to the last minor
   collection; [Gc.minor_words] also counts the live arena, which is
   what a between-collections sample needs. *)
let minor_words () = Gc.minor_words ()

let mk ?(clock = Clock.now) reg =
  let s = Gc.quick_stat () in
  let mw = minor_words () in
  {
    reg;
    g_heap = M.gauge reg "gc.heap_words";
    g_peak = M.gauge reg "gc.peak_heap_words";
    c_minor_words = M.counter reg "gc.minor_words";
    c_minor = M.counter reg "gc.minor_collections";
    c_major = M.counter reg "gc.major_collections";
    g_rate = M.gauge reg "gc.minor_alloc_rate";
    g_dropped = M.gauge reg "obs.dropped";
    clock;
    t0 = clock ();
    base_minor_words = mw;
    last_minor_words = mw;
    last_minor = s.Gc.minor_collections;
    last_major = s.Gc.major_collections;
  }

let sample_into h =
  let s = Gc.quick_stat () in
  let heap = float_of_int s.Gc.heap_words in
  M.set h.g_heap heap;
  M.set_max h.g_peak heap;
  let mw = minor_words () in
  let dw = mw -. h.last_minor_words in
  if dw > 0.0 then M.add h.c_minor_words (int_of_float dw);
  h.last_minor_words <- mw;
  let dmin = s.Gc.minor_collections - h.last_minor in
  if dmin > 0 then M.add h.c_minor dmin;
  h.last_minor <- s.Gc.minor_collections;
  let dmaj = s.Gc.major_collections - h.last_major in
  if dmaj > 0 then M.add h.c_major dmaj;
  h.last_major <- s.Gc.major_collections;
  let dt = h.clock () -. h.t0 in
  if dt > 0.0 then M.set h.g_rate ((mw -. h.base_minor_words) /. dt);
  (* Observability's own loss accounting: emissions nobody consumed plus
     flight-ring wrap-around evictions, so silence is always visible.
     These are process-wide totals; [set_max] keeps merges sane. *)
  M.set_max h.g_dropped (float_of_int (Event.dropped () + Flight.evicted ()))

let sample () =
  match Domain.DLS.get attached_stack with [] -> () | h :: _ -> sample_into h

(* The hook itself samples the calling domain's innermost registry; the
   atomic count only decides whether any hook is worth installing.  The
   install/clear races at the 0↔1 edge are benign: the worst case is a
   missed (or spurious, no-op) boundary sample. *)
let attach ?clock reg =
  let stack = Domain.DLS.get attached_stack in
  Domain.DLS.set attached_stack (mk ?clock reg :: stack);
  if stack = [] && Atomic.fetch_and_add active 1 = 0 then
    Trace.set_boundary_hook sample;
  sample ()

let detach () =
  match Domain.DLS.get attached_stack with
  | [] -> ()
  | h :: rest ->
    sample_into h;
    Domain.DLS.set attached_stack rest;
    if rest = [] && Atomic.fetch_and_add active (-1) = 1 then
      Trace.clear_boundary_hook ()

let with_attached ?clock reg f =
  attach ?clock reg;
  Fun.protect ~finally:detach f
