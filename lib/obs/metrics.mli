(** A registry of named counters, gauges and log-bucketed histograms.

    Registries are values: every verification run owns one (embedded in
    its [Verdict.stats]), so concurrent or repeated runs never bleed
    into each other, and a portfolio merges member registries with
    {!merge}.  Handles ([counter], [gauge], [histogram]) are resolved
    once by name and then updated by direct mutation — no lookup on the
    hot path.

    Histograms bucket by powers of two: bucket 0 holds values [<= 1],
    bucket [i >= 1] holds values in [(2^(i-1), 2^i]]; the last bucket
    absorbs everything beyond [2^62].  Exact count, sum, min and max are
    kept alongside, so means survive the bucketing. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create.  @raise Invalid_argument when the name is already
    registered as a different metric kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(* Counters *)
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(* Gauges *)
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keeps the maximum of the current and the new value. *)

val gauge_value : gauge -> float

(* Histograms *)
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_min : histogram -> float
(** 0 when empty. *)

val hist_max : histogram -> float
(** 0 when empty. *)

val hist_mean : histogram -> float
(** Exact mean ([sum/count]); 0 when empty. *)

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile ([q] clamped to
    [0,1]) from the bucket counts: the bucket containing rank
    [q * count] is located and the value interpolated linearly inside
    it, with the bucket edges tightened by the exact min/max.  The
    estimate is exact when all observations share a bucket and is
    otherwise off by at most the width of one power-of-two bucket.
    Pinned at the tracked extremes: [q <= 0] returns the exact minimum
    and [q >= 1] the exact maximum.  0 when empty.
    @raise Invalid_argument when [q] is NaN. *)

val bucket_of : float -> int
(** The bucket index a value falls into (exposed for tests). *)

val bucket_upper : int -> float
(** Inclusive upper bound of a bucket: [2^i]. *)

val hist_buckets : histogram -> (float * int) list
(** Non-empty buckets as [(inclusive upper bound, count)], ascending. *)

val merge : into:t -> t -> unit
(** Counters add, gauges keep the maximum, histograms merge bucket-wise
    (metrics absent from [into] are created). *)

val names : t -> string list
(** Registration order. *)

val to_json : t -> string
(** One JSON object: counters and gauges as numbers, histograms as
    [{"count","sum","max","buckets":[{"le","n"},...]}]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable snapshot, one metric per line. *)
