(** Shared JSON primitives for every textual sink of the repo.

    Four sibling modules (metrics, profile, progress, trace) plus the
    bench store and the suite runner each grew a hand-rolled string
    escaper; this module is the single replacement.  It also carries the
    minimal recursive-descent reader the persistent stores (bench
    snapshots, the run ledger, event JSONL streams) parse themselves
    back with — the toolchain has no JSON library, and the dialect we
    write is small.

    Escaping covers the full C0 range: the double quote, the backslash
    and every control character below 0x20 (with the conventional short
    forms for newline, tab, carriage return, backspace and form feed)
    are escaped, so no sink can emit a raw control byte into a JSON
    document again. *)

val escape_to : Buffer.t -> string -> unit
(** Append [s] to the buffer with all JSON-significant characters
    escaped (no surrounding quotes). *)

val escape : string -> string
(** [escape s] is the escaped copy of [s] (no surrounding quotes). *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes. *)

val float_ : float -> string
(** JSON-safe float rendering: integral values print without an
    exponent or trailing garbage; NaN and infinities — which JSON
    cannot represent — print as [0] rather than corrupting the
    document. *)

(* --- reading -------------------------------------------------------- *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Parse one complete JSON value; trailing garbage is an error.
    @raise Parse_error on malformed input. *)

val render : t -> string
(** Compact single-line rendering; [render (parse s)] is semantically
    [s] (whitespace and number formatting normalised). *)

(* Accessors shared by the stores.  The [field] form is total; the typed
   forms raise {!Parse_error} naming the missing or mistyped field. *)

val field : string -> t -> t option
val str_field : string -> t -> string
val num_field : string -> t -> float
val opt_str_field : string -> t -> string option
val opt_int_field : string -> t -> int option
