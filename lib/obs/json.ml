let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 2) in
  escape_to b s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let float_ v =
  (* JSON numbers: no NaN, no infinities, no trailing garbage. *)
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then "0"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

(* --- reading ---------------------------------------------------------- *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
          (* [!pos] is on the 'u'; the four hex digits follow it. *)
          let hex4 at =
            if at + 4 > n then fail "truncated \\u escape";
            let digit c =
              match c with
              | '0' .. '9' -> Char.code c - Char.code '0'
              | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
              | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
              | _ -> fail "bad \\u escape"
            in
            (digit s.[at] lsl 12)
            lor (digit s.[at + 1] lsl 8)
            lor (digit s.[at + 2] lsl 4)
            lor digit s.[at + 3]
          in
          let code = hex4 (!pos + 1) in
          pos := !pos + 4;
          if code >= 0xD800 && code <= 0xDBFF then
            (* High surrogate: combine with an immediately following low
               surrogate into one scalar; a lone one becomes U+FFFD
               rather than invalid UTF-8. *)
            if
              !pos + 2 < n
              && s.[!pos + 1] = '\\'
              && s.[!pos + 2] = 'u'
              &&
              let lo = hex4 (!pos + 3) in
              lo >= 0xDC00 && lo <= 0xDFFF
            then begin
              let lo = hex4 (!pos + 3) in
              pos := !pos + 6;
              Buffer.add_utf_8_uchar b
                (Uchar.of_int (0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)))
            end
            else Buffer.add_utf_8_uchar b Uchar.rep
          else if code >= 0xDC00 && code <= 0xDFFF then
            (* Lone low surrogate. *)
            Buffer.add_utf_8_uchar b Uchar.rep
          else Buffer.add_utf_8_uchar b (Uchar.of_int code)
        | _ -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> Bool (literal "true" true)
    | Some 'f' -> Bool (literal "false" false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let render v =
  let b = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (float_ f)
    | Str s ->
      Buffer.add_char b '"';
      escape_to b s;
      Buffer.add_char b '"'
    | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          go x)
        xs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_to b k;
          Buffer.add_string b "\":";
          go x)
        kvs;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let str_field name j =
  match field name j with
  | Some (Str s) -> s
  | _ -> raise (Parse_error (Printf.sprintf "missing string field %S" name))

let num_field name j =
  match field name j with
  | Some (Num f) -> f
  | _ -> raise (Parse_error (Printf.sprintf "missing numeric field %S" name))

let opt_str_field name j =
  match field name j with Some (Str s) -> Some s | _ -> None

let opt_int_field name j =
  match field name j with Some (Num f) -> Some (int_of_float f) | _ -> None
