(** Structured search-event log.

    Where {!Trace} answers "where did the time go" and {!Metrics}
    "how much work was done", the event log answers "what happened, in
    what order": solver restarts with live counters, clause-database
    reductions with an LBD snapshot, per-cut interpolant extractions,
    engine phase transitions, and the lifecycle of a parallel race
    (worker spawn, bound dispatch, cancellation with its cause).  A run
    recorded with events enabled can be replayed after the fact — the
    [isr_obs] CLI reconstructs who won a portfolio race and why from
    nothing but this stream.

    Emission is built for the solver's cadence, not the propagation
    loop's: events are coarse (restarts, reductions, cuts, phases), so
    one mutex around a per-domain int buffer is cheap.  When no recorder
    is installed, {!emit} is a single flag test — guard the payload
    construction with {!enabled} at call sites and the disabled path
    allocates nothing.

    Events are packed into per-domain int arrays (strings interned into
    a shared table, in the spirit of the proof store's int framing) and
    merged deterministically on read by [(timestamp, domain id,
    per-domain sequence number)], so the same recording always replays
    in the same order. *)

val schema_version : int
(** Highest schema this reader understands; {!write_jsonl} stamps the
    {e lowest} version that covers the stream, so older readers keep
    loading recordings that use no newer feature.  Schema 2 added the
    [dead_lbd]/[dead_uses] arrays to {!kind.Reduce}; schema-1 streams
    still load (the arrays decode as empty).  Schema 3 added
    {!kind.Share} and the [Exhausted] cause; schema 4 added the
    engine-kernel {!kind.Step} record — older readers skip those lines
    (unknown events and causes decode as [None]). *)

type cause =
  | Race_won   (** a racing worker published a definitive verdict *)
  | Deadline   (** the wall-clock or conflict budget expired *)
  | Min_depth  (** a shallower counterexample made the bound doomed *)
  | Exhausted  (** the worker ran out of work (its whole member slate
                   answered bound-limited) before any budget expired *)

type kind =
  | Restart of { conflicts : int; decisions : int; learnt : int }
      (** solver restart, with the live in-call counters *)
  | Reduce of {
      kept : int;
      dropped : int;
      lbd : int array;
      dead_lbd : int array;
      dead_uses : int array;
    }
      (** learnt-database reduction; [lbd.(i)] counts surviving clauses
          of LBD [i] (last bucket: [>= length - 1]).  [dead_lbd] and
          [dead_uses] histogram the victims by LBD at death and by
          conflict-analysis uses before deletion (same bucket
          convention); both empty in schema-1 recordings. *)
  | Itp_cut of { cut : int; support : int; nodes : int }
      (** one extracted interpolant: cut index, support-variable count
          and AIG cone size *)
  | Phase of { phase : string; step : int; detail : string }
      (** engine phase transition (bound advance, frame push,
          refinement); [step] is [-1] when the phase has no index *)
  | Spawn of { worker : int; engines : string }
      (** parallel race: worker domain spawned for these engines *)
  | Dispatch of { worker : int; bound : int }
      (** bound-parallel BMC: worker picked up this bound *)
  | Cancel of { worker : int; cause : cause; by : int }
      (** the causal cancellation edge: [worker] was cancelled by
          worker [by] for [cause] (self-edge for deadline expiry) *)
  | Verdict of { worker : int; verdict : string }
      (** a racing worker published the winning verdict *)
  | Analyze of {
      pass : string;
      ands_before : int;
      ands_after : int;
      latches_before : int;
      latches_after : int;
    }
      (** one static-analysis pass applied: model size before/after *)
  | Share of { worker : int; exported : int; imported : int; dropped : int }
      (** clause-sharing traffic: cumulative counts for [worker] at an
          import round — clauses exported to its ring, peers' clauses
          imported (re-derived locally), and candidates dropped (not a
          local consequence, or already satisfied) *)
  | Step of { lane : int; engine : string; n : int; pos : int; status : string }
      (** one engine-kernel step boundary: scheduler lane id, engine
          spelling, cumulative step count [n] for that instance, the
          engine's bound/round [pos] after the step, and the resulting
          status (["running"], ["proved"], ["falsified"], ["unknown"]).
          The per-domain sequence of lane ids reconstructs the exact
          interleaving, which the scheduler can re-drive verbatim. *)

type t = {
  ts : float;  (** monotonic {!Clock} time *)
  dom : int;   (** emitting domain ([Domain.self]) *)
  seq : int;   (** per-domain sequence number, assigned at emission *)
  kind : kind;
}

(* --- recording ------------------------------------------------------- *)

type recorder

val recorder : unit -> recorder

val set_recorder : recorder -> unit
(** Install [r] as the global recorder; {!emit} appends to it from any
    domain. *)

val clear_recorder : unit -> unit

val set_tap : (ts:float -> dom:int -> kind -> unit) -> unit
(** Install a second consumer fed every emission (after the recorder,
    same timestamp and domain stamp).  The flight recorder's ring
    buffers hang off this hook; installing a tap also turns {!enabled}
    on, so guarded call sites start constructing payloads.  The tap is
    called outside any lock — it must synchronise internally. *)

val clear_tap : unit -> unit

val enabled : unit -> bool
(** One flag read; call sites guard payload construction with this so
    the disabled path costs nothing.  True when a recorder or a tap (or
    both) is installed. *)

val emit : kind -> unit
(** Record one event, stamped with the current clock and domain, into
    the recorder and/or tap.  With neither installed the event is
    counted as dropped and otherwise ignored. *)

val dropped : unit -> int
(** Emissions that found no consumer installed (a call site skipped its
    {!enabled} guard, or consumers were torn down mid-run).  Surfaced by
    {!Resource} as the [obs.dropped] gauge together with flight-ring
    evictions. *)

val events : recorder -> t list
(** Decode and deterministically merge every domain's stream: sorted by
    [(ts, dom, seq)], each domain's own order preserved. *)

val count : recorder -> int

(* --- JSONL ----------------------------------------------------------- *)

val json_of_event : t -> string
(** One JSON object, single line. *)

val write_jsonl : recorder -> out_channel -> unit
(** Header line (the lowest schema version covering the stream's
    features) followed by one line per merged event. *)

val event_of_json : Json.t -> t option
(** Inverse of {!json_of_event}; [None] for header or foreign lines. *)

val read_jsonl : string -> t list
(** Load an exported stream back.  Unknown lines are skipped; a header
    with an unsupported schema version fails.
    @raise Failure on unreadable files or version mismatch. *)

val to_chrome : t list -> string
(** Render a merged stream as a Chrome trace-event JSON document
    (instant events, one lane per domain). *)
