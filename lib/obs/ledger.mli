(** Append-only ledger of completed verification runs.

    One directory holds everything: [ledger.jsonl] (a header line plus
    one JSON object per completed run) and an [events/] subdirectory for
    the per-run event streams ({!Event.write_jsonl}) and profile dumps
    the entries point at.  Entries are never rewritten — a re-run of the
    same instance appends a new entry, and cross-run analytics
    ([isr_obs diff]) work off the accumulated history.

    Runs are keyed three ways: the human-readable instance name, the
    structural hash of the property cone (so renamed copies of the same
    instance still compare), and the engine + configuration fingerprint.
    This layering sits below the engines, so an entry carries plain
    strings and numbers; the callers (bench harness, CLIs) project their
    verdicts and metric registries into it. *)

val schema_version : int

type entry = {
  id : string;  (** assigned at append: ["r0001"], ["r0002"], ... *)
  time : string;  (** wall-clock UTC, ["YYYY-MM-DDThh:mm:ssZ"] *)
  instance : string;  (** benchmark / model name *)
  instance_hash : string;
      (** structural hash of the property cone; [""] when unknown *)
  engine : string;
  config : string;  (** {!fingerprint} of the run configuration *)
  verdict : string;  (** ["proved"], ["falsified"], ["unknown"] *)
  kfp : int option;  (** convergence depth (outer), when defined *)
  jfp : int option;  (** convergence depth (inner), when defined *)
  wall_s : float;
  conflicts : int;
  sat_calls : int;
  itp_nodes : int;
  metrics_json : string;
      (** full metrics-registry snapshot, raw JSON ([""] when absent) *)
  events_path : string option;
      (** event stream, relative to the ledger directory *)
  profile_path : string option;
}

type t

val open_ : string -> t
(** Open (creating if needed) the ledger rooted at this directory. *)

val dir : t -> string

val events_dir : t -> string
(** The [events/] subdirectory (created by {!open_}). *)

val fingerprint : (string * string) list -> string
(** Canonical config fingerprint: [k=v] pairs sorted by key, joined
    with single spaces — stable under option reordering. *)

val append : t -> entry -> entry
(** Assign the next run id (the [id] field of the argument is ignored),
    append one line to [ledger.jsonl] and return the stored entry. *)

val load : t -> entry list
(** All entries, oldest first.  Malformed lines are skipped; a header
    with an unsupported schema version fails.
    @raise Failure on an unreadable ledger or version mismatch. *)

val find : t -> string -> entry option
(** Look an entry up by run id. *)

val resolve : t -> string -> string
(** Resolve an entry-relative path (events, profile) against the ledger
    directory; absolute paths pass through. *)

val json_of_entry : entry -> string
val entry_of_json : Json.t -> entry option
