(* Call-tree profiles folded from span event streams.  The builder keeps
   one mutable node per (parent, name) pair, so memory is proportional to
   the shape of the call tree, not to the number of events — a live
   collector over a million-span bench run stays small. *)

type node = {
  name : string;
  calls : int;
  total : float;
  self : float;
  children : node list;
}

(* --- mutable builder ------------------------------------------------------- *)

type bnode = {
  bname : string;
  mutable bcalls : int;
  mutable btotal : float;
  mutable border : string list; (* child names, reverse arrival order *)
  btbl : (string, bnode) Hashtbl.t;
}

let mk_bnode name = { bname = name; bcalls = 0; btotal = 0.0; border = []; btbl = Hashtbl.create 4 }

type builder = {
  root : bnode;
  (* One stack of open spans per emitting domain (innermost first):
     parallel runs interleave events from several domains in a single
     stream, and folding them through one stack would pair begins with
     the wrong ends.  Each domain's sub-tree hangs off the shared root. *)
  stacks : (int, (bnode * float) list) Hashtbl.t;
  mutable first_ts : float;
  mutable last_ts : float;
  mutable seen : bool;
}

let create () =
  {
    root = mk_bnode "(root)";
    stacks = Hashtbl.create 4;
    first_ts = 0.0;
    last_ts = 0.0;
    seen = false;
  }

let stack_of b tid = Option.value ~default:[] (Hashtbl.find_opt b.stacks tid)

let child_of parent name =
  match Hashtbl.find_opt parent.btbl name with
  | Some n -> n
  | None ->
    let n = mk_bnode name in
    Hashtbl.add parent.btbl name n;
    parent.border <- name :: parent.border;
    n

let note_ts b ts =
  if not b.seen then begin
    b.seen <- true;
    b.first_ts <- ts
  end;
  if ts > b.last_ts then b.last_ts <- ts

let feed b (e : Trace.event) =
  match e with
  | Trace.Begin { name; ts; tid; _ } ->
    note_ts b ts;
    let stack = stack_of b tid in
    let parent = match stack with (n, _) :: _ -> n | [] -> b.root in
    let n = child_of parent name in
    n.bcalls <- n.bcalls + 1;
    Hashtbl.replace b.stacks tid ((n, ts) :: stack)
  | Trace.End { ts; tid; _ } -> (
    note_ts b ts;
    match stack_of b tid with
    | (n, t0) :: rest ->
      n.btotal <- n.btotal +. Float.max 0.0 (ts -. t0);
      Hashtbl.replace b.stacks tid rest
    | [] -> (* stray end: tolerate unbalanced streams *) ())
  | Trace.Instant { ts; _ } -> note_ts b ts

(* Snapshot: still-open spans are charged provisionally up to the last
   seen timestamp.  The builder is left untouched, so feeding the real
   End events later and snapshotting again gives the exact totals. *)
let snapshot b =
  let rec freeze bn extra =
    let children =
      List.rev_map
        (fun name ->
          let c = Hashtbl.find bn.btbl name in
          (* Distribute pending time to open children of this node: only
             spans on the open stacks matter, and each stack entry's
             name is unique per parent in [btbl]. *)
          let c_extra =
            Hashtbl.fold
              (fun _ stack acc ->
                List.fold_left
                  (fun acc (sn, t0) ->
                    if sn == c then acc +. Float.max 0.0 (b.last_ts -. t0) else acc)
                  acc stack)
              b.stacks 0.0
          in
          freeze c c_extra)
        bn.border
    in
    let children = List.sort (fun a b -> compare b.total a.total) children in
    let total =
      if bn == b.root then if b.seen then b.last_ts -. b.first_ts else 0.0
      else bn.btotal +. extra
    in
    let child_total = List.fold_left (fun acc c -> acc +. c.total) 0.0 children in
    {
      name = bn.bname;
      calls = (if bn == b.root then 1 else bn.bcalls);
      total;
      self = Float.max 0.0 (total -. child_total);
      children;
    }
  in
  freeze b.root 0.0

let of_events events =
  let b = create () in
  List.iter (feed b) events;
  snapshot b

let collector () =
  let b = create () in
  let sink = { Trace.emit = feed b; flush = (fun () -> ()) } in
  (sink, fun () -> snapshot b)

let root_total n = n.total

(* --- flat aggregation ------------------------------------------------------ *)

(* Aggregate by span name over the whole tree.  [self] and [calls] sum
   safely; [total] of a name only counts spans not nested inside another
   span of the same name, so recursion is not double-charged. *)
let hot root =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let bucket name =
    match Hashtbl.find_opt tbl name with
    | Some b -> b
    | None ->
      let b = ref (0, 0.0, 0.0) in
      Hashtbl.add tbl name b;
      order := name :: !order;
      b
  in
  let rec walk ancestors n =
    List.iter
      (fun (c : node) ->
        let b = bucket c.name in
        let calls, total, self = !b in
        let total' = if List.mem c.name ancestors then total else total +. c.total in
        b := (calls + c.calls, total', self +. c.self);
        walk (c.name :: ancestors) c)
      n.children
  in
  walk [] root;
  let rows =
    List.rev_map
      (fun name ->
        let calls, total, self = !(Hashtbl.find tbl name) in
        (name, calls, total, self))
      !order
  in
  List.sort (fun (_, _, _, s1) (_, _, _, s2) -> compare s2 s1) rows

(* --- rendering ------------------------------------------------------------- *)

let pct part whole = if whole > 0.0 then 100.0 *. part /. whole else 0.0

let pp ?(top = 12) ?(max_depth = 6) ?(min_frac = 0.002) fmt root =
  let whole = Float.max root.total 1e-12 in
  Format.fprintf fmt "profile: wall %.3fs@." root.total;
  let rec tree depth n =
    if depth <= max_depth && (n.total >= min_frac *. whole || depth <= 1) then begin
      Format.fprintf fmt "%s%-*s %9.3fs %5.1f%%  self %8.3fs  x%d@."
        (String.make (2 * depth) ' ')
        (Stdlib.max 1 (36 - (2 * depth)))
        n.name n.total (pct n.total whole) n.self n.calls;
      List.iter (tree (depth + 1)) n.children
    end
  in
  List.iter (tree 0) root.children;
  let rows = hot root in
  if rows <> [] then begin
    Format.fprintf fmt "hot spans (by self time):@.";
    List.iteri
      (fun i (name, calls, total, self) ->
        if i < top then
          Format.fprintf fmt "  %-30s self %8.3fs %5.1f%%  total %8.3fs  x%d@." name self
            (pct self whole) total calls)
      rows
  end

let escape = Json.escape

let to_json root =
  let b = Buffer.create 1024 in
  let rec emit (n : node) =
    Buffer.add_string b
      (Printf.sprintf "{\"name\":\"%s\",\"calls\":%d,\"total_s\":%.6f,\"self_s\":%.6f,\"children\":["
         (escape n.name) n.calls n.total n.self);
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char b ',';
        emit c)
      n.children;
    Buffer.add_string b "]}"
  in
  emit root;
  Buffer.contents b
