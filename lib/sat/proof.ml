type step =
  | Input of { lits : Lit.t array; tag : int }
  | Derived of { lits : Lit.t array; first : int; chain : (int * int) array }

type t = { steps : step array; empty : int; nvars : int }

let lits p id =
  match p.steps.(id) with Input { lits; _ } | Derived { lits; _ } -> lits

let tag p id = match p.steps.(id) with Input { tag; _ } -> Some tag | Derived _ -> None

let max_tag p =
  Array.fold_left
    (fun acc s -> match s with Input { tag; _ } -> max acc tag | Derived _ -> acc)
    0 p.steps

let fold_inorder f p =
  let n = Array.length p.steps in
  assert (n > 0);
  let attr = ref [||] in
  let get id =
    assert (id >= 0 && id < Array.length !attr);
    !attr.(id)
  in
  let first = f ~get 0 p.steps.(0) in
  attr := Array.make n first;
  for id = 1 to n - 1 do
    !attr.(id) <- f ~get id p.steps.(id)
  done;
  !attr

let used p =
  let n = Array.length p.steps in
  let mark = Array.make n false in
  (* Antecedents always have smaller ids: one backwards sweep suffices. *)
  mark.(p.empty) <- true;
  for id = n - 1 downto 0 do
    if mark.(id) then
      match p.steps.(id) with
      | Input _ -> ()
      | Derived { first; chain; _ } ->
        mark.(first) <- true;
        Array.iter (fun (_, aid) -> mark.(aid) <- true) chain
  done;
  mark

let core p =
  let mark = used p in
  let acc = ref [] in
  for id = Array.length p.steps - 1 downto 0 do
    if mark.(id) then
      match p.steps.(id) with Input _ -> acc := id :: !acc | Derived _ -> ()
  done;
  !acc

let core_tags p =
  core p
  |> List.filter_map (fun id ->
         match p.steps.(id) with Input { tag; _ } -> Some tag | Derived _ -> None)
  |> List.sort_uniq Int.compare

(* LRAT-style export.  Clauses are renumbered inputs-first: inputs take
   ids 1..m in step order (matching their position in [to_dimacs]), used
   derived steps continue from m+1 in step order — antecedents always
   precede their resolvents, so ids stay strictly increasing.  The RUP
   hint order for a trivial resolution chain is the reversed chain
   followed by [first]: assuming the negation of the derived clause,
   every literal of chain clause i other than its pivot literal is
   either a literal of the derived clause (assumed false) or the pivot
   of a later chain position (already propagated false), so each hint
   propagates its pivot literal and [first] closes the conflict. *)

let to_dimacs p =
  let buf = Buffer.create 1024 in
  let ninputs =
    Array.fold_left
      (fun n s -> match s with Input _ -> n + 1 | Derived _ -> n)
      0 p.steps
  in
  Printf.bprintf buf "p cnf %d %d\n" p.nvars ninputs;
  Array.iter
    (function
      | Derived _ -> ()
      | Input { lits; _ } ->
        Array.iter (fun l -> Printf.bprintf buf "%d " (Lit.to_dimacs l)) lits;
        Buffer.add_string buf "0\n")
    p.steps;
  Buffer.contents buf

let to_lrat p =
  let n = Array.length p.steps in
  let newid = Array.make n 0 in
  let next = ref 0 in
  Array.iteri
    (fun i s ->
      match s with
      | Input _ ->
        incr next;
        newid.(i) <- !next
      | Derived _ -> ())
    p.steps;
  let mark = used p in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i s ->
      match s with
      | Derived { lits; first; chain } when mark.(i) ->
        incr next;
        newid.(i) <- !next;
        Printf.bprintf buf "%d" !next;
        Array.iter (fun l -> Printf.bprintf buf " %d" (Lit.to_dimacs l)) lits;
        Buffer.add_string buf " 0";
        for k = Array.length chain - 1 downto 0 do
          Printf.bprintf buf " %d" newid.(snd chain.(k))
        done;
        Printf.bprintf buf " %d 0\n" newid.(first)
      | _ -> ())
    p.steps;
  Buffer.contents buf

let pp_stats fmt p =
  let inputs = ref 0 and derived = ref 0 and chain_len = ref 0 in
  Array.iter
    (function
      | Input _ -> incr inputs
      | Derived { chain; _ } ->
        incr derived;
        chain_len := !chain_len + Array.length chain)
    p.steps;
  Format.fprintf fmt "proof: %d inputs, %d derived, %d resolutions, empty=%d" !inputs
    !derived !chain_len p.empty
