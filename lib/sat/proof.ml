type step =
  | Input of { lits : Lit.t array; tag : int }
  | Derived of { lits : Lit.t array; first : int; chain : (int * int) array }
  | Trimmed

type t = {
  steps : step array;
  empty : int;
  nvars : int;
  deletions : (int * int) array;
}

let lits p id =
  match p.steps.(id) with
  | Input { lits; _ } | Derived { lits; _ } -> lits
  | Trimmed -> invalid_arg "Proof.lits: trimmed step"

let tag p id =
  match p.steps.(id) with Input { tag; _ } -> Some tag | Derived _ | Trimmed -> None

let max_tag p =
  Array.fold_left
    (fun acc s -> match s with Input { tag; _ } -> max acc tag | Derived _ | Trimmed -> acc)
    0 p.steps

let fold_inorder f p =
  let n = Array.length p.steps in
  assert (n > 0);
  let attr = ref [||] in
  let get id =
    assert (id >= 0 && id < Array.length !attr);
    !attr.(id)
  in
  let first = f ~get 0 p.steps.(0) in
  attr := Array.make n first;
  for id = 1 to n - 1 do
    !attr.(id) <- f ~get id p.steps.(id)
  done;
  !attr

let used p =
  let n = Array.length p.steps in
  let mark = Array.make n false in
  (* Antecedents always have smaller ids: one backwards sweep suffices. *)
  mark.(p.empty) <- true;
  for id = n - 1 downto 0 do
    if mark.(id) then
      match p.steps.(id) with
      | Input _ | Trimmed -> ()
      | Derived { first; chain; _ } ->
        mark.(first) <- true;
        Array.iter (fun (_, aid) -> mark.(aid) <- true) chain
  done;
  mark

let core p =
  let mark = used p in
  let acc = ref [] in
  for id = Array.length p.steps - 1 downto 0 do
    if mark.(id) then
      match p.steps.(id) with Input _ -> acc := id :: !acc | Derived _ | Trimmed -> ()
  done;
  !acc

let core_tags p =
  core p
  |> List.filter_map (fun id ->
         match p.steps.(id) with Input { tag; _ } -> Some tag | Derived _ | Trimmed -> None)
  |> List.sort_uniq Int.compare

(* LRAT-style export.  Clauses are renumbered inputs-first: inputs take
   ids 1..m in step order (matching their position in [to_dimacs]), used
   derived steps continue from m+1 in step order — antecedents always
   precede their resolvents, so ids stay strictly increasing.  The RUP
   hint order for a trivial resolution chain is the reversed chain
   followed by [first]: assuming the negation of the derived clause,
   every literal of chain clause i other than its pivot literal is
   either a literal of the derived clause (assumed false) or the pivot
   of a later chain position (already propagated false), so each hint
   propagates its pivot literal and [first] closes the conflict. *)

let to_dimacs p =
  let buf = Buffer.create 1024 in
  let ninputs =
    Array.fold_left
      (fun n s -> match s with Input _ -> n + 1 | Derived _ | Trimmed -> n)
      0 p.steps
  in
  Printf.bprintf buf "p cnf %d %d\n" p.nvars ninputs;
  Array.iter
    (function
      | Derived _ | Trimmed -> ()
      | Input { lits; _ } ->
        Array.iter (fun l -> Printf.bprintf buf "%d " (Lit.to_dimacs l)) lits;
        Buffer.add_string buf "0\n")
    p.steps;
  Buffer.contents buf

let to_lrat p =
  let n = Array.length p.steps in
  let newid = Array.make n 0 in
  let next = ref 0 in
  Array.iteri
    (fun i s ->
      match s with
      | Input _ ->
        incr next;
        newid.(i) <- !next
      | Derived _ | Trimmed -> ())
    p.steps;
  let mark = used p in
  let buf = Buffer.create 1024 in
  (* Deletion events are interleaved at their recorded positions: all
     events with [pos <= i] are flushed before step [i]'s addition line.
     A deleted clause was created before its deletion ([id < pos]), so
     any used clause named by a flushed event already carries its new
     id; events naming trimmed clauses are dropped (the checker never
     saw an addition to delete). *)
  let dels = p.deletions in
  let di = ref 0 in
  let flush_deletions upto =
    let ids = ref [] in
    while !di < Array.length dels && fst dels.(!di) <= upto do
      let id = snd dels.(!di) in
      if newid.(id) > 0 then ids := newid.(id) :: !ids;
      incr di
    done;
    match List.rev !ids with
    | [] -> ()
    | ids ->
      Printf.bprintf buf "%d d" !next;
      List.iter (fun id -> Printf.bprintf buf " %d" id) ids;
      Buffer.add_string buf " 0\n"
  in
  Array.iteri
    (fun i s ->
      match s with
      | Derived { lits; first; chain } when mark.(i) ->
        flush_deletions i;
        incr next;
        newid.(i) <- !next;
        Printf.bprintf buf "%d" !next;
        Array.iter (fun l -> Printf.bprintf buf " %d" (Lit.to_dimacs l)) lits;
        Buffer.add_string buf " 0";
        for k = Array.length chain - 1 downto 0 do
          Printf.bprintf buf " %d" newid.(snd chain.(k))
        done;
        Printf.bprintf buf " %d 0\n" newid.(first)
      | _ -> ())
    p.steps;
  Buffer.contents buf

let bytes_estimate p =
  let words = ref 0 in
  Array.iter
    (fun s ->
      words :=
        !words
        +
        match s with
        | Input { lits; _ } -> Array.length lits + 3
        | Derived { lits; chain; _ } -> Array.length lits + (2 * Array.length chain) + 4
        | Trimmed -> 1)
    p.steps;
  8 * (!words + (2 * Array.length p.deletions))

let pp_stats fmt p =
  let inputs = ref 0 and derived = ref 0 and trimmed = ref 0 and chain_len = ref 0 in
  let used_inputs = ref 0 and used_derived = ref 0 in
  let mark = used p in
  Array.iteri
    (fun id s ->
      match s with
      | Input _ ->
        incr inputs;
        if mark.(id) then incr used_inputs
      | Derived { chain; _ } ->
        incr derived;
        if mark.(id) then incr used_derived;
        chain_len := !chain_len + Array.length chain
      | Trimmed -> incr trimmed)
    p.steps;
  Format.fprintf fmt
    "proof: %d/%d inputs used, %d/%d derived used (%d trimmed), %d deletions, %d \
     resolutions, ~%d bytes, empty=%d"
    !used_inputs !inputs !used_derived (!derived + !trimmed) !trimmed
    (Array.length p.deletions) !chain_len (bytes_estimate p) p.empty
