(** Append-only proof store, decoupled from the solver's clause database.

    The solver's in-memory clause database holds only what propagation
    needs (literals, LBD, activity) and may delete learned clauses;
    everything proof-shaped — input tags, resolution chains, deletion
    events — lives here, packed into a flat integer arena.  Step ids are
    assigned by append order and are {e stable}: they never move when the
    clause database compacts, so they are the id space of
    {!Proof.t}, of LRAT exports, and of the unsat-core-to-latch mapping
    in [Isr_model.Unroll].

    Layout (one record per step at [index.(id)]):
    {v
      input:    [-(tag+1); nlits; lit...]
      derived:  [first;    nlits; lit...; nchain; pivot; aid; ...]
    v}
    The head word disambiguates: tags are [>= 0] so the input marker is
    [<= -1], while a derived step's [first] antecedent id is [>= 0].
    Deletion events are [(pos, id)] pairs in a side vector, where [pos]
    is the number of steps that existed when the deletion happened. *)

type t

val create : unit -> t

val n_steps : t -> int
(** Number of steps appended so far (= the next id to be assigned). *)

val n_inputs : t -> int
(** Number of input steps appended so far. *)

val n_deletions : t -> int
(** Number of deletion events recorded so far. *)

val bytes : t -> int
(** Current footprint of the packed arena in bytes (payload + index +
    deletion events) — the quantity behind the ["proof.bytes"] gauge. *)

val add_input : t -> tag:int -> Lit.t array -> int
(** Appends an input clause ([tag >= 0]) and returns its step id.
    The literal array is copied at append time. *)

val add_derived : t -> lits:Lit.t array -> first:int -> chain:(int * int) list -> int
(** Appends a derived clause with its trivial resolution chain (in
    resolution order) and returns its step id. *)

val delete : t -> int -> unit
(** Records a database deletion event for the given step id.  The step
    itself stays in the log — deletion only marks the point in the step
    sequence after which the clause left the solver's database. *)

val is_input : t -> int -> bool

val tag : t -> int -> int
(** Partition tag of an input step; [-1] for derived steps. *)

val to_proof : ?trim:bool -> t -> empty:int -> nvars:int -> Proof.t
(** Materializes the log as a {!Proof.t} rooted at the [empty] step.
    With [trim] (the default), derived steps outside the used cone of
    [empty] become {!Proof.Trimmed} placeholders; input steps are always
    materialized because interpolation labels variables over {e all}
    input clauses.  Deletion events are carried over verbatim. *)
