(** An incremental CDCL SAT solver with resolution-proof logging.

    Clauses may be added at any time (each carrying an optional partition
    tag used by interpolation) and {!solve} may be called repeatedly,
    optionally under {e assumptions}.  On an unsatisfiable answer under
    assumptions, {!unsat_core} names the involved assumption subset; on
    an unconditionally unsatisfiable instance, {!proof} returns the full
    resolution proof.  On [Sat], {!value} reads the model.

    Implementation notes: two-watched-literal propagation, first-UIP
    clause learning, VSIDS branching with phase saving, Luby restarts.
    Learned clauses are never deleted so that every proof antecedent stays
    available — instances produced by bounded model checking at our scale
    stay well within memory. *)

type t

type result = Sat | Unsat | Undef
(** [Undef] is returned only when a conflict budget is exhausted. *)

val create : unit -> t

val new_var : t -> int
(** Allocates a fresh variable and returns its index. *)

val nvars : t -> int

val add_clause : t -> ?tag:int -> Lit.t list -> unit
(** Adds a clause; the solver first backtracks to the root level.
    Tautologies are silently dropped; duplicate literals are merged.
    [tag] (default 0) is recorded in the proof for interpolation; it must
    be [>= 0]. *)

val solve : ?assumptions:Lit.t list -> ?conflict_budget:int -> t -> result
(** Runs the search under the given assumption literals (installed as the
    first decisions).  [conflict_budget] bounds the number of conflicts
    explored; when exhausted the solver answers [Undef] and a later call
    resumes with all learned clauses retained. *)

val value : t -> int -> bool
(** [value s v] is the model value of variable [v].  Only meaningful
    after {!solve} returned [Sat]; unassigned variables (possible when
    the formula did not constrain them) read as [false]. *)

val lit_value : t -> Lit.t -> bool

val unsat_core : t -> Lit.t list
(** After an [Unsat] answer under assumptions: a subset [C] of the
    assumptions such that the clauses together with [C] are
    unsatisfiable.  Empty when the instance is unconditionally
    unsatisfiable.
    @raise Invalid_argument when the last result was not [Unsat]. *)

val proof : t -> Proof.t
(** The resolution proof of {e unconditional} unsatisfiability (a proof
    exists whenever [Unsat] was answered with no assumptions involved).
    @raise Invalid_argument otherwise. *)

val iter_input_clauses : t -> (tag:int -> Lit.t array -> unit) -> unit
(** Iterates the input (non-learned) clauses in insertion order with
    their partition tags, as stored after duplicate-literal merging.
    The array is live watch-ordered storage — do not mutate or retain
    it.  Used by the CNF linter of [Isr_check]. *)

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_restarts : t -> int
val num_learnt : t -> int
val max_learnt_len : t -> int
(** Longest learned clause so far (0 before any conflict). *)

val num_clauses : t -> int

val on_learnt : t -> (int -> unit) option -> unit
(** Installs (or clears) an observer called with the length of every
    clause learned from a conflict — the hook behind the per-call
    learned-clause-length histogram of {!Isr_obs.Metrics}. *)

val on_restart : t -> (int -> unit) option -> unit
(** Installs (or clears) an observer called with the cumulative restart
    count at every restart — the hook behind the ["sat.restart"]
    progress heartbeat. *)

val set_interrupt : t -> (unit -> bool) option -> unit
(** Installs (or clears) a cooperative-cancellation poll.  The search
    consults it at solve entry and every few hundred conflicts (plus a
    coarser decision cadence, and a propagation-count cadence so even
    conflict-light, propagation-heavy searches poll every few
    milliseconds); when it returns [true], {!solve} answers [Undef]
    exactly as for an exhausted conflict budget — the solver stays
    resumable.  The hook behind {!Isr_core.Budget}'s deadline and
    cancel token: deadlines are honoured mid-slice and race losers in
    the parallel portfolio stop within one conflict slice of the
    winner. *)
