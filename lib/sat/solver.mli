(** An incremental CDCL SAT solver with resolution-proof logging.

    Clauses may be added at any time (each carrying an optional partition
    tag used by interpolation) and {!solve} may be called repeatedly,
    optionally under {e assumptions}.  On an unsatisfiable answer under
    assumptions, {!unsat_core} names the involved assumption subset; on
    an unconditionally unsatisfiable instance, {!proof} returns the
    resolution proof.  On [Sat], {!value} reads the model.

    Implementation notes: two-watched-literal propagation, first-UIP
    clause learning, VSIDS branching with phase saving, Luby restarts.
    The clause database is decoupled from the proof: resolution chains,
    input tags and deletion events live in an append-only {!Proof_log},
    while the in-memory database keeps only literals plus the LBD and
    activity scores driving MiniSat-style learnt-clause deletion
    ({!reduce_policy}).  Deleting a learnt clause from the database
    never loses a proof antecedent — the log is append-only and
    {!proof} reconstructs (and trims) the proof from it on demand. *)

type t

type result = Sat | Unsat | Undef
(** [Undef] is returned only when a conflict budget is exhausted. *)

type reduce_policy = {
  enabled : bool;
  base : int;       (** live-learnt threshold for the first reduction *)
  growth : float;   (** geometric multiplier applied after each reduction *)
  keep_lbd : int;   (** clauses with [lbd <= keep_lbd] are never deleted *)
}
(** Learnt-database reduction policy.  When the number of live learnt
    clauses exceeds the current threshold, the worst half of the
    deletable ones — not binary, not glue, not locked as a reason — is
    deleted (ordered by LBD, ties broken by clause activity) and the
    threshold grows geometrically. *)

val default_reduce : reduce_policy
(** Reduction enabled, [base = 4000], [growth = 1.3], [keep_lbd = 2]. *)

val create : unit -> t

val new_var : t -> int
(** Allocates a fresh variable and returns its index. *)

val nvars : t -> int

val add_clause : t -> ?tag:int -> Lit.t list -> unit
(** Adds a clause; the solver first backtracks to the root level.
    Tautologies are silently dropped; duplicate literals are merged.
    [tag] (default 0) is recorded in the proof for interpolation; it must
    be [>= 0]. *)

val import_clause :
  t -> ?lbd:int -> Lit.t list -> [ `Imported | `Satisfied | `Dropped ]
(** Offers a peer's learnt clause to this solver (clause sharing across
    domains).  The clause is {e never trusted}: it is re-derived against
    this solver's own clause database by reverse unit propagation —
    assume the negations of its unknown literals on a throwaway decision
    level and propagate.  On conflict, the clause (restricted to the
    literals the derivation actually needed) enters the database as a
    learnt clause whose {e real} resolution chain is logged into the
    proof, so LRAT export, interpolation labeling and the Paranoid proof
    replay are oblivious to sharing; [`Dropped] means it is not a
    unit-propagation consequence of the local formula (the peer solved a
    different instance, or the derivation needs search) and nothing was
    recorded.  [`Satisfied] means a literal is already true at the root.
    [lbd] seeds the clause's glue for the reduction heuristics (default:
    its length).  Backtracks to the root level first, like
    {!add_clause}.  Imported clauses never re-fire the {!on_export}
    hook, so shared clauses cannot ping-pong between domains. *)

val solve : ?assumptions:Lit.t list -> ?conflict_budget:int -> t -> result
(** Runs the search under the given assumption literals (installed as the
    first decisions).  [conflict_budget] bounds the number of conflicts
    explored; when exhausted the solver answers [Undef] and a later call
    resumes with all live learned clauses retained. *)

val value : t -> int -> bool
(** [value s v] is the model value of variable [v].  Only meaningful
    after {!solve} returned [Sat]; unassigned variables (possible when
    the formula did not constrain them) read as [false]. *)

val lit_value : t -> Lit.t -> bool

val unsat_core : t -> Lit.t list
(** After an [Unsat] answer under assumptions: a subset [C] of the
    assumptions such that the clauses together with [C] are
    unsatisfiable.  Empty when the instance is unconditionally
    unsatisfiable.
    @raise Invalid_argument when the last result was not [Unsat]. *)

val proof : ?trim:bool -> t -> Proof.t
(** The resolution proof of {e unconditional} unsatisfiability (a proof
    exists whenever [Unsat] was answered with no assumptions involved),
    reconstructed from the append-only proof log.  With [trim] (the
    default), derived steps outside the used cone come back as
    {!Proof.Trimmed}; inputs are always materialized.
    @raise Invalid_argument otherwise. *)

val next_step_id : t -> int
(** The proof-log id the next added clause will receive.  This is the
    {e stable} id space of {!Proof.t}, {!Proof.core} and
    {!iter_input_clauses} — unlike database slots it never shifts when
    the learnt database is reduced.  [Isr_model.Unroll] keys its
    clause-to-latch map on it. *)

val iter_input_clauses : t -> (tag:int -> Lit.t array -> unit) -> unit
(** Iterates the input (non-learned) clauses in insertion order with
    their partition tags, as stored after duplicate-literal merging.
    The array is live watch-ordered storage — do not mutate or retain
    it.  Used by the CNF linter of [Isr_check]. *)

val set_reduce : t -> reduce_policy -> unit
(** Installs the learnt-database reduction policy.  Re-installing the
    current policy is a no-op (the geometric schedule keeps running);
    installing a different one restarts the schedule at [base].
    @raise Invalid_argument when [base <= 0] or [growth < 1]. *)

val reduce_policy : t -> reduce_policy

val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_restarts : t -> int

val num_learnt : t -> int
(** Cumulative count of clauses learned from conflicts. *)

val num_live_learnt : t -> int
(** Learnt clauses currently in the database (learned minus deleted). *)

val num_deleted : t -> int
(** Learnt clauses deleted by database reductions so far; by
    construction [num_deleted s + num_live_learnt s = num_learnt s]. *)

val set_origin : t -> int -> unit
(** Tag clauses born from now on with this engine phase (a logical SAT
    call index, a BMC bound…).  Purely observational: it feeds the
    clause-lifecycle analytics and never affects search. *)

val origin : t -> int

val birth_lbd_counts : t -> int array
(** Cumulative histogram of learnt clauses by LBD at learn time
    (16 buckets, index = glue, last saturating).  Sums to
    {!num_learnt}. *)

val dead_lbd_counts : t -> int array
(** Reduction victims by LBD at death; sums to {!num_deleted}. *)

val dead_uses_counts : t -> int array
(** Reduction victims by conflict-analysis uses before deletion; sums
    to {!num_deleted}. *)

val dead_drift_counts : t -> int array
(** Reduction victims by glue improvement (birth LBD minus LBD at
    death, never negative — stored LBD only tightens); sums to
    {!num_deleted}. *)

val refuted : t -> bool
(** Whether an unconditional refutation (empty clause) has been derived
    — exactly when {!proof} will not raise. *)

val core_birth_lbd : t -> int array
(** Histogram (by birth LBD, 16 buckets) of the learnt clauses that
    participate in the trimmed refutation — including clauses deleted
    after serving their resolutions.  Each bucket is bounded by the
    corresponding {!birth_lbd_counts} bucket.  Costs a proof
    reconstruction; gate it on observability being enabled.
    @raise Invalid_argument when not {!refuted}. *)

val num_reduces : t -> int
(** Completed learnt-database reductions. *)

val max_learnt_len : t -> int
(** Longest learned clause so far (0 before any conflict). *)

val num_clauses : t -> int
(** Current size of the clause database (inputs plus live learnt). *)

val proof_steps : t -> int
(** Steps appended to the proof log so far — the ["proof.steps"] gauge. *)

val proof_bytes : t -> int
(** Current footprint of the proof log in bytes — the ["proof.bytes"]
    gauge. *)

val on_learnt : t -> (len:int -> lbd:int -> unit) option -> unit
(** Installs (or clears) an observer called with the length and glue
    (LBD at learn time) of every clause learned from a conflict — the
    hook behind the learned-clause-length and birth-LBD histograms of
    {!Isr_obs.Metrics}. *)

val on_export : t -> (lits:Lit.t array -> lbd:int -> unit) option -> unit
(** Installs (or clears) an observer called with the literals (a private
    copy) and glue of every clause learned from a conflict — the export
    side of clause sharing.  Not fired for clauses entering through
    {!import_clause}. *)

val on_restart : t -> (int -> unit) option -> unit
(** Installs (or clears) an observer called with the cumulative restart
    count at every restart — the hook behind the ["sat.restart"]
    progress heartbeat. *)

type reduce_info = {
  kept : int;              (** live learnt clauses after the reduction *)
  deleted : int;           (** victims of this reduction *)
  kept_lbd : int array;    (** survivors by current LBD *)
  dead_lbd : int array;    (** victims by LBD at death *)
  dead_uses : int array;   (** victims by conflict-analysis uses before deletion *)
  dead_drift : int array;  (** victims by birth LBD - death LBD (glue improvement) *)
}
(** One completed database reduction as seen by {!on_reduce}.  All
    histograms use the 16-bucket convention: index = value, last bucket
    saturating. *)

val on_reduce : t -> (reduce_info -> unit) option -> unit
(** Installs (or clears) an observer called after every learnt-database
    reduction — the hook behind the ["sat.db.reduce"] / ["sat.db.kept"]
    metrics, the clause-lifecycle histograms and the [db.reduce] search
    event.  The victim histograms are accounted unconditionally (they
    also feed the cumulative [dead_*_counts]); only the survivor
    snapshot is computed on demand. *)

val set_interrupt : t -> (unit -> bool) option -> unit
(** Installs (or clears) a cooperative-cancellation poll.  The search
    consults it at solve entry and every few hundred conflicts (plus a
    coarser decision cadence, and a propagation-count cadence so even
    conflict-light, propagation-heavy searches poll every few
    milliseconds); when it returns [true], {!solve} answers [Undef]
    exactly as for an exhausted conflict budget — the solver stays
    resumable.  The hook behind {!Isr_core.Budget}'s deadline and
    cancel token: deadlines are honoured mid-slice and race losers in
    the parallel portfolio stop within one conflict slice of the
    winner. *)
