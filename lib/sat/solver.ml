type result = Sat | Unsat | Undef

(* Tiered sanitizer (Off / Fast / Paranoid): named, metered invariant
   checks replacing bare asserts on the hot paths. *)
module Check = Isr_check_core.Level

(* The in-memory clause database holds only what propagation and the
   reduction heuristics need; proof payloads (tags, resolution chains,
   deletion events) live in the append-only [Proof_log].  [cid] is the
   clause's stable proof-log step id — database slots compact on
   [reduce_db], proof ids never move. *)
type clause = {
  cid : int;                   (* proof-log step id (stable) *)
  lits : Lit.t array;
  learnt : bool;
  birth_lbd : int;             (* glue at learn time, frozen (0 for inputs) *)
  origin : int;                (* engine phase (set_origin) current at learn time *)
  mutable lbd : int;           (* glue: tightened on conflict-analysis reuse *)
  mutable act : float;         (* clause activity for the reduction sort *)
  mutable uses : int;          (* conflict-analysis participations *)
}

type reduce_policy = {
  enabled : bool;
  base : int;       (* live-learnt threshold for the first reduction *)
  growth : float;   (* geometric multiplier applied after each reduction *)
  keep_lbd : int;   (* clauses with lbd <= keep_lbd are never deleted *)
}

let default_reduce = { enabled = true; base = 4000; growth = 1.3; keep_lbd = 2 }

(* One completed database reduction, as seen by [on_reduce].  The
   histograms share the 16-bucket convention of the cumulative clause
   statistics: index = value, last bucket saturates. *)
type reduce_info = {
  kept : int;                (* live learnt clauses after the reduction *)
  deleted : int;             (* victims of this reduction *)
  kept_lbd : int array;      (* survivors by current LBD *)
  dead_lbd : int array;      (* victims by LBD at death *)
  dead_uses : int array;     (* victims by conflict-analysis uses before deletion *)
  dead_drift : int array;    (* victims by birth LBD - death LBD (glue improvement) *)
}

let hist_buckets = 16
let hist_bump h v = h.(min v (hist_buckets - 1)) <- h.(min v (hist_buckets - 1)) + 1

type t = {
  mutable nvars : int;
  mutable clauses : clause array;      (* by database slot; compacts on reduce *)
  mutable nclauses : int;
  mutable watches : Vec.t array;       (* literal -> clause slots *)
  mutable assigns : int array;         (* var -> -1 unknown / 0 false / 1 true *)
  mutable level : int array;           (* var -> decision level *)
  mutable reason : int array;          (* var -> clause slot or -1 *)
  mutable phase : Bytes.t;             (* var -> saved phase *)
  mutable activity : float array;
  mutable var_inc : float;
  mutable cla_inc : float;             (* clause-activity increment *)
  log : Proof_log.t;                   (* append-only proof store *)
  trail : Vec.t;                       (* assigned literals, in order *)
  trail_lim : Vec.t;                   (* trail size at each decision *)
  mutable qhead : int;
  order : Heap.t;
  mutable ok : bool;                   (* false once unconditionally unsat *)
  mutable empty_id : int;              (* proof id of the empty clause, or -1 *)
  mutable last_result : result;
  mutable core : Lit.t list;           (* assumption core of the last Unsat *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_count : int;
  mutable live_learnt : int;           (* learnt clauses currently in the database *)
  mutable reduces : int;               (* completed database reductions *)
  mutable policy : reduce_policy;
  mutable reduce_limit : int;          (* next live-learnt threshold *)
  mutable max_learnt_len : int;
  mutable origin : int;                (* stamped into clauses born from now on *)
  born_lbd : int array;                (* cumulative birth-LBD histogram (16 buckets) *)
  dead_lbd : int array;                (* victims by LBD at death *)
  dead_uses : int array;               (* victims by uses before deletion *)
  dead_drift : int array;              (* victims by birth_lbd - lbd at death *)
  mutable birth : Bytes.t;             (* cid -> birth LBD (clamped to 255); 0 = input *)
  mutable learnt_cb : (len:int -> lbd:int -> unit) option;
      (* observes each learned clause (length and glue) *)
  mutable export_cb : (lits:Lit.t array -> lbd:int -> unit) option;
      (* observes each learned clause's literals (clause sharing); never
         fired for imported clauses, so shared clauses cannot ping-pong *)
  mutable restart_cb : (int -> unit) option; (* observes each restart (cumulative count) *)
  mutable reduce_cb : (reduce_info -> unit) option;
      (* observes each database reduction *)
  mutable interrupt : (unit -> bool) option; (* polled during search; true aborts to Undef *)
  mutable seen : Bytes.t;              (* conflict-analysis scratch *)
  mutable mark0 : Bytes.t;             (* level-0 elimination scratch *)
  mutable lbd_mark : Bytes.t;          (* level-indexed LBD scratch *)
  pending : Vec.t;                     (* clause slots to re-examine at solve start *)
}

let dummy_clause =
  { cid = -1; lits = [||]; learnt = false; birth_lbd = 0; origin = 0; lbd = 0; act = 0.0; uses = 0 }

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 dummy_clause;
    nclauses = 0;
    watches = Array.init 32 (fun _ -> Vec.create ~cap:4 ());
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    phase = Bytes.make 16 '\000';
    activity = Array.make 16 0.0;
    var_inc = 1.0;
    cla_inc = 1.0;
    log = Proof_log.create ();
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    order = Heap.create ();
    ok = true;
    empty_id = -1;
    last_result = Undef;
    core = [];
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_count = 0;
    live_learnt = 0;
    reduces = 0;
    policy = default_reduce;
    reduce_limit = default_reduce.base;
    max_learnt_len = 0;
    origin = 0;
    born_lbd = Array.make hist_buckets 0;
    dead_lbd = Array.make hist_buckets 0;
    dead_uses = Array.make hist_buckets 0;
    dead_drift = Array.make hist_buckets 0;
    birth = Bytes.make 64 '\000';
    learnt_cb = None;
    export_cb = None;
    restart_cb = None;
    reduce_cb = None;
    interrupt = None;
    seen = Bytes.make 16 '\000';
    mark0 = Bytes.make 16 '\000';
    lbd_mark = Bytes.make 17 '\000';
    pending = Vec.create ();
  }

let nvars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_restarts s = s.restarts
let num_learnt s = s.learnt_count
let num_live_learnt s = s.live_learnt
let num_reduces s = s.reduces
let max_learnt_len s = s.max_learnt_len
let num_clauses s = s.nclauses
let next_step_id s = Proof_log.n_steps s.log
let proof_steps s = Proof_log.n_steps s.log
let proof_bytes s = Proof_log.bytes s.log
let on_learnt s cb = s.learnt_cb <- cb
let on_export s cb = s.export_cb <- cb
let on_restart s cb = s.restart_cb <- cb
let on_reduce s cb = s.reduce_cb <- cb
let set_interrupt s cb = s.interrupt <- cb
let set_origin s o = s.origin <- o
let origin s = s.origin
let num_deleted s = s.learnt_count - s.live_learnt
let birth_lbd_counts s = Array.copy s.born_lbd
let dead_lbd_counts s = Array.copy s.dead_lbd
let dead_uses_counts s = Array.copy s.dead_uses
let dead_drift_counts s = Array.copy s.dead_drift
let refuted s = (not s.ok) && s.empty_id >= 0

let set_reduce s p =
  if p.base <= 0 then invalid_arg "Solver.set_reduce: base must be positive";
  if p.growth < 1.0 then invalid_arg "Solver.set_reduce: growth must be >= 1";
  (* Re-applying the current policy (every budgeted call does) must not
     reset the geometric schedule mid-run. *)
  if p <> s.policy then begin
    s.policy <- p;
    s.reduce_limit <- p.base
  end

let reduce_policy s = s.policy

let interrupted s = match s.interrupt with Some f -> f () | None -> false

let grow_vars s n =
  let cap = Array.length s.assigns in
  if n > cap then begin
    let cap' = max (2 * cap) n in
    let grow_int a def =
      let a' = Array.make cap' def in
      Array.blit a 0 a' 0 cap;
      a'
    in
    s.assigns <- grow_int s.assigns (-1);
    s.level <- grow_int s.level 0;
    s.reason <- grow_int s.reason (-1);
    let grow_bytes b =
      let b' = Bytes.make cap' '\000' in
      Bytes.blit b 0 b' 0 cap;
      b'
    in
    s.phase <- grow_bytes s.phase;
    s.seen <- grow_bytes s.seen;
    s.mark0 <- grow_bytes s.mark0;
    (* Level-indexed: levels range over 0..nvars inclusive. *)
    let lbd' = Bytes.make (cap' + 1) '\000' in
    Bytes.blit s.lbd_mark 0 lbd' 0 (Bytes.length s.lbd_mark);
    s.lbd_mark <- lbd';
    let act' = Array.make cap' 0.0 in
    Array.blit s.activity 0 act' 0 cap;
    s.activity <- act';
    Heap.set_activity s.order s.activity
  end;
  let wcap = Array.length s.watches in
  if 2 * n > wcap then begin
    let wcap' = max (2 * wcap) (2 * n) in
    let w' =
      Array.init wcap' (fun i -> if i < wcap then s.watches.(i) else Vec.create ~cap:4 ())
    in
    s.watches <- w'
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_vars s s.nvars;
  Heap.set_activity s.order s.activity;
  Heap.insert s.order v;
  v

(* Value of a literal: -1 unknown, 0 false, 1 true. *)
let lit_val s l =
  let a = Array.unsafe_get s.assigns (Lit.var l) in
  if a < 0 then -1 else a lxor (l land 1)

let value s v = s.assigns.(v) = 1
let lit_value s l = lit_val s l = 1
let decision_level s = Vec.size s.trail_lim

let push_clause s c =
  if s.nclauses = Array.length s.clauses then begin
    let a = Array.make (2 * s.nclauses) dummy_clause in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  let slot = s.nclauses in
  s.clauses.(slot) <- c;
  s.nclauses <- slot + 1;
  slot

let watch s lit slot = Vec.push s.watches.(lit) slot

let enqueue s lit reason =
  let v = Lit.var lit in
  Check.check "sat.enqueue_unassigned"
    (s.assigns.(v) < 0)
    ~detail:(fun () -> Printf.sprintf "variable %d is already assigned" v);
  s.assigns.(v) <- (lit land 1) lxor 1;
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  Vec.push s.trail lit

exception Conflict of int

(* Two-watched-literal propagation; returns the slot of a conflicting
   clause or -1. *)
let propagate s =
  try
    while s.qhead < Vec.size s.trail do
      let p = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let false_lit = Lit.neg p in
      let ws = s.watches.(false_lit) in
      let n = Vec.size ws in
      let j = ref 0 in
      for i = 0 to n - 1 do
        let slot = Vec.get ws i in
        let c = s.clauses.(slot) in
        let lits = c.lits in
        (* Ensure the false literal sits at position 1. *)
        if lits.(0) = false_lit then begin
          lits.(0) <- lits.(1);
          lits.(1) <- false_lit
        end;
        if lit_val s lits.(0) = 1 then begin
          (* Clause already satisfied: keep the watch. *)
          Vec.set ws !j slot;
          incr j
        end
        else begin
          (* Look for a replacement literal to watch. *)
          let len = Array.length lits in
          let rec find k =
            if k >= len then -1 else if lit_val s lits.(k) <> 0 then k else find (k + 1)
          in
          let k = find 2 in
          if k >= 0 then begin
            lits.(1) <- lits.(k);
            lits.(k) <- false_lit;
            watch s lits.(1) slot
          end
          else begin
            (* Unit or conflicting: the watch stays. *)
            Vec.set ws !j slot;
            incr j;
            if lit_val s lits.(0) = 0 then begin
              (* Conflict: salvage the remaining watches, then abort. *)
              for i' = i + 1 to n - 1 do
                Vec.set ws !j (Vec.get ws i');
                incr j
              done;
              Vec.shrink ws !j;
              s.qhead <- Vec.size s.trail;
              raise (Conflict slot)
            end
            else enqueue s lits.(0) slot
          end
        end
      done;
      Vec.shrink ws !j
    done;
    -1
  with Conflict slot -> slot

let var_decay = 1.0 /. 0.95
let cla_decay = 1.0 /. 0.999

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100;
    Heap.rebuild s.order
  end;
  Heap.decrease s.order v

let bump_clause s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    for i = 0 to s.nclauses - 1 do
      let c' = s.clauses.(i) in
      if c'.learnt then c'.act <- c'.act *. 1e-20
    done;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_activities s =
  s.var_inc <- s.var_inc *. var_decay;
  s.cla_inc <- s.cla_inc *. cla_decay

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let lit = Vec.get s.trail i in
      let v = Lit.var lit in
      Bytes.set s.phase v (if s.assigns.(v) = 1 then '\001' else '\000');
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1;
      if not (Heap.in_heap s.order v) then Heap.insert s.order v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* Glue (LBD) of a clause: distinct non-root decision levels among its
   literals, at least 1.  Called before the backjump so every literal
   still carries its conflict-time level. *)
let compute_lbd s lits =
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lv = s.level.(Lit.var l) in
      if lv > 0 && Bytes.get s.lbd_mark lv = '\000' then begin
        Bytes.set s.lbd_mark lv '\001';
        incr n
      end)
    lits;
  Array.iter
    (fun l ->
      let lv = s.level.(Lit.var l) in
      if lv > 0 then Bytes.set s.lbd_mark lv '\000')
    lits;
  max 1 !n

(* Append to [chain] the resolutions eliminating every marked level-0
   variable from the virtual resolvent.  Walks the level-0 trail segment
   backwards: a reason clause only mentions literals assigned earlier, so a
   single sweep eliminates everything in valid resolution order.  Chain
   entries carry proof-log ids, not database slots. *)
let resolve_level0 s chain =
  let bound =
    if Vec.size s.trail_lim > 0 then Vec.get s.trail_lim 0 else Vec.size s.trail
  in
  for i = bound - 1 downto 0 do
    let v = Lit.var (Vec.get s.trail i) in
    if Bytes.get s.mark0 v = '\001' then begin
      Bytes.set s.mark0 v '\000';
      let r = s.reason.(v) in
      Check.check "sat.level0_has_reason" (r >= 0)
        ~detail:(fun () -> Printf.sprintf "level-0 variable %d has no reason clause" v);
      chain := (v, s.clauses.(r).cid) :: !chain;
      Array.iter
        (fun l ->
          let w = Lit.var l in
          if w <> v && s.level.(w) = 0 then Bytes.set s.mark0 w '\001')
        s.clauses.(r).lits
    end
  done

(* First-UIP conflict analysis.  Returns the learned clause (asserting
   literal first), the backjump level, and the resolution chain over
   proof-log ids (in resolution order). *)
let analyze s confl =
  let cur_level = decision_level s in
  let learnt = ref [] in
  let chain = ref [] in
  let zeros = ref false in
  let counter = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let slot = ref confl in
  let continue = ref true in
  while !continue do
    let c = s.clauses.(!slot) in
    if c.learnt then begin
      bump_clause s c;
      (* Clause-lifecycle accounting: participating in a conflict
         analysis is the "useful" event, and — glucose-style — the
         moment to tighten the stored glue (every literal of a reason
         clause is assigned here, so [compute_lbd] sees real levels).
         LBD only ever improves; the drift histogram relies on that. *)
      c.uses <- c.uses + 1;
      let g = compute_lbd s c.lits in
      if g < c.lbd then c.lbd <- g
    end;
    Array.iter
      (fun q ->
        (* Skip the pivot occurrence: reason clauses contain the literal
           they propagated. *)
        if !p = -1 || q <> !p then begin
          let v = Lit.var q in
          if Bytes.get s.seen v = '\000' then
            if s.level.(v) = 0 then begin
              (* Resolved against its level-0 reason afterwards. *)
              Bytes.set s.mark0 v '\001';
              zeros := true
            end
            else begin
              Bytes.set s.seen v '\001';
              bump_var s v;
              if s.level.(v) = cur_level then incr counter else learnt := q :: !learnt
            end
        end)
      c.lits;
    (* Select the next seen literal on the trail at the current level. *)
    while Bytes.get s.seen (Lit.var (Vec.get s.trail !idx)) = '\000' do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    let v = Lit.var !p in
    Bytes.set s.seen v '\000';
    decr counter;
    if !counter = 0 then continue := false
    else begin
      slot := s.reason.(v);
      Check.check "sat.analyze_has_reason" (!slot >= 0)
        ~detail:(fun () -> Printf.sprintf "trail variable %d has no reason clause" v);
      chain := (v, s.clauses.(!slot).cid) :: !chain
    end
  done;
  (* Local clause minimization (Sörensson): a literal is redundant when
     its reason's other literals are all in the clause already or fixed
     at level 0 — resolving it away shrinks the clause without adding
     anything new.  Literals are processed latest-assigned first, so a
     removal never invalidates the check for the earlier ones; each
     removal is recorded in the resolution chain to keep proofs exact. *)
  let original_learnt = !learnt in
  if !learnt <> [] then begin
    let in_clause = Hashtbl.create 16 in
    List.iter (fun q -> Hashtbl.replace in_clause (Lit.var q) ()) !learnt;
    let position = Hashtbl.create 16 in
    for i = 0 to Vec.size s.trail - 1 do
      let v = Lit.var (Vec.get s.trail i) in
      if Hashtbl.mem in_clause v then Hashtbl.replace position v i
    done;
    let by_pos_desc =
      List.sort
        (fun a b ->
          compare (Hashtbl.find position (Lit.var b)) (Hashtbl.find position (Lit.var a)))
        !learnt
    in
    let kept = ref [] in
    List.iter
      (fun q ->
        let v = Lit.var q in
        let r = s.reason.(v) in
        let removable =
          r >= 0
          && Array.for_all
               (fun l ->
                 let w = Lit.var l in
                 w = v || s.level.(w) = 0 || Hashtbl.mem in_clause w)
               s.clauses.(r).lits
        in
        if removable then begin
          Hashtbl.remove in_clause v;
          chain := (v, s.clauses.(r).cid) :: !chain;
          Array.iter
            (fun l ->
              let w = Lit.var l in
              if w <> v && s.level.(w) = 0 then begin
                Bytes.set s.mark0 w '\001';
                zeros := true
              end)
            s.clauses.(r).lits
        end
        else kept := q :: !kept)
      by_pos_desc;
    learnt := !kept
  end;
  if !zeros then resolve_level0 s chain;
  let learnt_lits = Lit.neg !p :: !learnt in
  List.iter (fun q -> Bytes.set s.seen (Lit.var q) '\000') original_learnt;
  let bt_level = List.fold_left (fun acc q -> max acc s.level.(Lit.var q)) 0 !learnt in
  (Array.of_list learnt_lits, bt_level, s.clauses.(confl).cid, List.rev !chain)

(* Conflict whose literals are all false at decision level 0: derive the
   empty clause and mark the instance unconditionally unsatisfiable.
   The empty clause is a proof-log step only — it never enters the
   clause database (nothing watches or resolves against it). *)
let analyze_final s confl =
  let chain = ref [] in
  Array.iter (fun q -> Bytes.set s.mark0 (Lit.var q) '\001') s.clauses.(confl).lits;
  resolve_level0 s chain;
  s.empty_id <-
    Proof_log.add_derived s.log ~lits:[||] ~first:s.clauses.(confl).cid
      ~chain:(List.rev !chain);
  s.ok <- false;
  s.core <- []

(* Assumption failure: the assumption [p] is false under the earlier
   assumption levels.  Collect the subset of assumption decisions the
   falsification depends on — the unsat core. *)
let analyze_assumptions s p =
  let core = ref [ p ] in
  let v0 = Lit.var p in
  Bytes.set s.seen v0 '\001';
  for i = Vec.size s.trail - 1 downto 0 do
    let q = Vec.get s.trail i in
    let v = Lit.var q in
    if Bytes.get s.seen v = '\001' then begin
      Bytes.set s.seen v '\000';
      let r = s.reason.(v) in
      if r = -1 then begin
        (* An assumption decision (level-0 literals never reach here —
           their reasons are clauses — and ordinary search decisions
           cannot, because assumption installation happens first). *)
        if s.level.(v) > 0 then core := q :: !core
      end
      else
        Array.iter
          (fun l ->
            if s.level.(Lit.var l) > 0 then Bytes.set s.seen (Lit.var l) '\001')
          s.clauses.(r).lits
    end
  done;
  Bytes.set s.seen v0 '\000';
  !core

let record_learnt s lits ~lbd first chain =
  let cid = Proof_log.add_derived s.log ~lits ~first ~chain in
  s.learnt_count <- s.learnt_count + 1;
  s.live_learnt <- s.live_learnt + 1;
  let len = Array.length lits in
  if len > s.max_learnt_len then s.max_learnt_len <- len;
  hist_bump s.born_lbd lbd;
  (* Birth LBD per proof id, outliving the database clause: proof-core
     attribution ([core_birth_lbd]) needs it after deletion. *)
  if cid >= Bytes.length s.birth then begin
    let b' = Bytes.make (max (2 * Bytes.length s.birth) (cid + 1)) '\000' in
    Bytes.blit s.birth 0 b' 0 (Bytes.length s.birth);
    s.birth <- b'
  end;
  Bytes.set s.birth cid (Char.chr (min lbd 255));
  (match s.learnt_cb with None -> () | Some f -> f ~len ~lbd);
  (* The copy shields the hook from the watch-order mutations below (and
     from propagation's in-place reordering later). *)
  (match s.export_cb with None -> () | Some f -> f ~lits:(Array.copy lits) ~lbd);
  let slot =
    push_clause s
      { cid; lits; learnt = true; birth_lbd = lbd; origin = s.origin; lbd; act = s.cla_inc; uses = 0 }
  in
  if Array.length lits >= 2 then begin
    (* lits.(0) is the asserting literal; the second watch must be the
       highest-level other literal so the invariant survives backjumps. *)
    let best = ref 1 in
    for k = 2 to Array.length lits - 1 do
      if s.level.(Lit.var lits.(k)) > s.level.(Lit.var lits.(!best)) then best := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    watch s lits.(0) slot;
    watch s lits.(1) slot
  end;
  slot

(* MiniSat-style learnt-database reduction.  Deletion candidates are the
   live learnt clauses that are neither binary, nor glue (lbd <=
   keep_lbd), nor locked as some assigned variable's reason; the worst
   half by (lbd desc, activity asc) is dropped.  Deletions are recorded
   in the proof log (for LRAT [d] lines), the clause array compacts, and
   reasons, the pending list and every watch list are rebuilt on the new
   slots — proof ids are untouched.  Safe at any decision level: the
   watched-positions-0/1 invariant holds for every clause of length >= 2,
   so watch lists can be reconstructed from scratch. *)
let reduce_db s =
  let locked = Array.make s.nclauses false in
  Vec.iter
    (fun l ->
      let r = s.reason.(Lit.var l) in
      if r >= 0 then locked.(r) <- true)
    s.trail;
  let cand = ref [] in
  for i = 0 to s.nclauses - 1 do
    let c = s.clauses.(i) in
    if c.learnt && Array.length c.lits > 2 && c.lbd > s.policy.keep_lbd && not locked.(i)
    then cand := i :: !cand
  done;
  let cand = Array.of_list !cand in
  Array.sort
    (fun a b ->
      let ca = s.clauses.(a) and cb = s.clauses.(b) in
      if ca.lbd <> cb.lbd then compare cb.lbd ca.lbd else compare ca.act cb.act)
    cand;
  let ndelete = Array.length cand / 2 in
  if ndelete > 0 then begin
    let dead = Array.make s.nclauses false in
    (* Per-reduction victim histograms, also folded into the cumulative
       lifecycle statistics.  Cheap (three bumps per victim), so always
       on — the registry invariants (dead sums = deleted count) must
       hold whether or not anyone listens. *)
    let dl = Array.make hist_buckets 0 in
    let du = Array.make hist_buckets 0 in
    let dd = Array.make hist_buckets 0 in
    for k = 0 to ndelete - 1 do
      let slot = cand.(k) in
      let c = s.clauses.(slot) in
      hist_bump dl c.lbd;
      hist_bump du c.uses;
      hist_bump dd (max 0 (c.birth_lbd - c.lbd));
      dead.(slot) <- true;
      Proof_log.delete s.log c.cid
    done;
    Array.iteri (fun i n -> s.dead_lbd.(i) <- s.dead_lbd.(i) + n) dl;
    Array.iteri (fun i n -> s.dead_uses.(i) <- s.dead_uses.(i) + n) du;
    Array.iteri (fun i n -> s.dead_drift.(i) <- s.dead_drift.(i) + n) dd;
    (* Compact the database and remap every stored slot. *)
    let map = Array.make s.nclauses (-1) in
    let j = ref 0 in
    for i = 0 to s.nclauses - 1 do
      if not dead.(i) then begin
        s.clauses.(!j) <- s.clauses.(i);
        map.(i) <- !j;
        incr j
      end
    done;
    for i = !j to s.nclauses - 1 do
      s.clauses.(i) <- dummy_clause
    done;
    s.nclauses <- !j;
    Vec.iter
      (fun l ->
        let v = Lit.var l in
        let r = s.reason.(v) in
        if r >= 0 then begin
          let r' = map.(r) in
          Check.check "sat.reduce_keeps_reasons" (r' >= 0)
            ~detail:(fun () -> Printf.sprintf "reason of variable %d was deleted" v);
          s.reason.(v) <- r'
        end)
      s.trail;
    for i = 0 to Vec.size s.pending - 1 do
      Vec.set s.pending i map.(Vec.get s.pending i)
    done;
    Array.iter Vec.clear s.watches;
    for i = 0 to s.nclauses - 1 do
      let c = s.clauses.(i) in
      if Array.length c.lits >= 2 then begin
        watch s c.lits.(0) i;
        watch s c.lits.(1) i
      end
    done;
    s.live_learnt <- s.live_learnt - ndelete;
    s.reduces <- s.reduces + 1;
    match s.reduce_cb with
    | Some f ->
      (* LBD distribution of the surviving learnt clauses; only computed
         when someone is listening (the victim histograms were already
         paid above). *)
      let lbd = Array.make hist_buckets 0 in
      for i = 0 to s.nclauses - 1 do
        let c = s.clauses.(i) in
        if c.learnt then hist_bump lbd c.lbd
      done;
      f
        {
          kept = s.live_learnt;
          deleted = ndelete;
          kept_lbd = lbd;
          dead_lbd = dl;
          dead_uses = du;
          dead_drift = dd;
        }
    | None -> ()
  end;
  (* Grow the threshold even when nothing was deletable, so an
     all-glue/all-locked database does not retrigger every conflict. *)
  s.reduce_limit <- int_of_float (float_of_int s.reduce_limit *. s.policy.growth) + 1

(* Adding clauses is allowed at any time; the solver backtracks to the
   root level first.  Unit consequences are deferred to the next solve
   (via the pending list) so that proof shapes do not depend on
   interleaving clause addition with propagation. *)
let add_clause s ?(tag = 0) lits =
  if tag < 0 then invalid_arg "Solver.add_clause: negative tag";
  if s.ok then begin
    cancel_until s 0;
    s.last_result <- Undef;
    (* Merge duplicates, drop tautologies.  Literals are otherwise kept
       untouched so the clause matches its proof role exactly. *)
    let lits = List.sort_uniq Lit.compare lits in
    let rec tauto = function
      | a :: (b :: _ as rest) -> (Lit.var a = Lit.var b && a <> b) || tauto rest
      | _ -> false
    in
    if not (tauto lits) then begin
      List.iter
        (fun l ->
          if Lit.var l >= s.nvars || l < 0 then
            invalid_arg "Solver.add_clause: unknown variable")
        lits;
      let arr = Array.of_list lits in
      let cid = Proof_log.add_input s.log ~tag arr in
      let slot =
        push_clause s
          {
            cid;
            lits = arr;
            learnt = false;
            birth_lbd = 0;
            origin = s.origin;
            lbd = 0;
            act = 0.0;
            uses = 0;
          }
      in
      match Array.length arr with
      | 0 ->
        s.ok <- false;
        s.empty_id <- cid
      | 1 -> Vec.push s.pending slot
      | _ ->
        (* Watch two non-false literals when possible (under the current
           root-level assignment); when fewer exist, the clause is unit
           or false right now and goes to the pending list. *)
        let len = Array.length arr in
        let swap i j =
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        in
        let pos = ref 0 in
        (try
           for i = 0 to len - 1 do
             if !pos < 2 && lit_val s arr.(i) <> 0 then begin
               swap !pos i;
               incr pos;
               if !pos = 2 then raise Exit
             end
           done
         with Exit -> ());
        watch s arr.(0) slot;
        watch s arr.(1) slot;
        if !pos < 2 then Vec.push s.pending slot
    end
  end

(* Clause import for multi-domain sharing.  A peer's learnt clause is
   never trusted: it is re-derived against THIS solver's clause database
   by reverse unit propagation — assume the negation of every unknown
   literal on a throwaway decision level and propagate.  A conflict
   means the clause (or a subset of it) is a unit-propagation
   consequence of the local formula, and walking the throwaway trail
   segment backwards through the reason clauses yields an exact trivial
   resolution chain for it, logged into [Proof_log] like any locally
   learnt clause.  No conflict means the clause is not a local
   consequence (the racing engines encode different instances) and it is
   dropped.  Either way the proof log only ever contains locally
   certified steps, so LRAT export, interpolation labeling and the
   Paranoid replay survive sharing unchanged. *)
(* Re-examine the pending clauses at solve start: enqueue the unit ones,
   derive the empty clause from falsified ones.  Clauses whose literal
   got satisfied at the root level are dropped from the list. *)
let flush_pending s =
  let kept = ref [] in
  let failed = ref false in
  Vec.iter
    (fun slot ->
      if not !failed then begin
        let lits = s.clauses.(slot).lits in
        let nonfalse = ref [] in
        Array.iter (fun l -> if lit_val s l <> 0 then nonfalse := l :: !nonfalse) lits;
        match !nonfalse with
        | [] ->
          analyze_final s slot;
          failed := true
        | [ l ] ->
          if lit_val s l = -1 then enqueue s l slot;
          (* A root-level assignment never goes away: once satisfied (or
             enqueued) the clause needs no further attention. *)
          ()
        | _ -> kept := slot :: !kept
      end)
    s.pending;
  Vec.clear s.pending;
  List.iter (fun slot -> Vec.push s.pending slot) (List.rev !kept);
  not !failed

let import_clause s ?lbd lits =
  let lits = List.sort_uniq Lit.compare lits in
  let rec tauto = function
    | a :: (b :: _ as rest) -> (Lit.var a = Lit.var b && a <> b) || tauto rest
    | _ -> false
  in
  if
    (not s.ok)
    || tauto lits
    || List.exists (fun l -> l < 0 || Lit.var l >= s.nvars) lits
  then `Dropped
  else begin
    cancel_until s 0;
    (* Root units still parked on the pending list (clauses added since
       the last solve) must be enqueued first, exactly as at solve start
       — both so a root-satisfied candidate is recognised as such and so
       the fixpoint below is over the full database. *)
    if not (flush_pending s) then begin
      s.last_result <- Undef;
      `Dropped
    end
    else begin
    (* Root propagation must be at fixpoint before reasons are walked. *)
    let confl = propagate s in
    if confl >= 0 then begin
      (* The local database is already refuted at the root — record that
         instead of the import. *)
      analyze_final s confl;
      s.last_result <- Undef;
      `Dropped
    end
    else if List.exists (fun l -> lit_val s l = 1) lits then `Satisfied
    else begin
      let unknown = List.filter (fun l -> lit_val s l = -1) lits in
      Vec.push s.trail_lim (Vec.size s.trail);
      List.iter (fun l -> enqueue s (Lit.neg l) (-1)) unknown;
      let confl = propagate s in
      if confl < 0 then begin
        cancel_until s 0;
        `Dropped
      end
      else begin
        (* Eliminate every seen throwaway-level variable via its reason,
           walking the trail backwards (reasons only mention literals
           assigned earlier, so one sweep resolves in valid order); the
           throwaway decisions themselves contribute their negation —
           a literal of the imported clause — and level-0 variables are
           resolved away through [resolve_level0].  The result is the
           imported clause restricted to its underived literals. *)
        let first = s.clauses.(confl).cid in
        let chain = ref [] in
        let out = ref [] in
        let zeros = ref false in
        let see q =
          let v = Lit.var q in
          if s.level.(v) = 0 then begin
            if Bytes.get s.mark0 v = '\000' then begin
              Bytes.set s.mark0 v '\001';
              zeros := true
            end
          end
          else if Bytes.get s.seen v = '\000' then Bytes.set s.seen v '\001'
        in
        Array.iter see s.clauses.(confl).lits;
        let bound = Vec.get s.trail_lim 0 in
        for i = Vec.size s.trail - 1 downto bound do
          let q = Vec.get s.trail i in
          let v = Lit.var q in
          if Bytes.get s.seen v = '\001' then begin
            Bytes.set s.seen v '\000';
            let r = s.reason.(v) in
            if r < 0 then out := Lit.neg q :: !out
            else begin
              chain := (v, s.clauses.(r).cid) :: !chain;
              Array.iter (fun l -> if Lit.var l <> v then see l) s.clauses.(r).lits
            end
          end
        done;
        if !zeros then resolve_level0 s chain;
        let chain = List.rev !chain in
        cancel_until s 0;
        let arr = Array.of_list !out in
        let cid = Proof_log.add_derived s.log ~lits:arr ~first ~chain in
        s.last_result <- Undef;
        let len = Array.length arr in
        let lbd = match lbd with Some g -> max 1 g | None -> max 1 len in
        s.learnt_count <- s.learnt_count + 1;
        if len > s.max_learnt_len then s.max_learnt_len <- len;
        hist_bump s.born_lbd lbd;
        if cid >= Bytes.length s.birth then begin
          let b' = Bytes.make (max (2 * Bytes.length s.birth) (cid + 1)) '\000' in
          Bytes.blit s.birth 0 b' 0 (Bytes.length s.birth);
          s.birth <- b'
        end;
        Bytes.set s.birth cid (Char.chr (min lbd 255));
        if len = 0 then begin
          (* The conflict needed no throwaway decision at all: the local
             database is unsatisfiable outright. *)
          s.ok <- false;
          s.empty_id <- cid
        end
        else begin
          s.live_learnt <- s.live_learnt + 1;
          let slot =
            push_clause s
              {
                cid;
                lits = arr;
                learnt = true;
                birth_lbd = lbd;
                origin = s.origin;
                lbd;
                act = s.cla_inc;
                uses = 0;
              }
          in
          if len = 1 then Vec.push s.pending slot
          else begin
            (* Every literal is unassigned at the root here (each was a
               throwaway decision's negation), so any two watches do. *)
            watch s arr.(0) slot;
            watch s arr.(1) slot
          end
        end;
        `Imported
      end
    end
    end
  end

let pick_branch_var s =
  let rec loop () =
    match Heap.pop s.order with
    | None -> -1
    | Some v -> if s.assigns.(v) < 0 then v else loop ()
  in
  loop ()

(* Luby restart sequence (MiniSat formulation), scaled by [restart_base]. *)
let luby x =
  let rec outer size seq = if size >= x + 1 then (size, seq) else outer ((2 * size) + 1) (seq + 1) in
  let rec inner size seq x =
    if size - 1 = x then seq
    else
      let size = (size - 1) / 2 in
      inner size (seq - 1) (x mod size)
  in
  let size, seq = outer 1 0 in
  1 lsl inner size seq x

let restart_base = 100

(* Interrupt polls also ride the propagation counter: a conflict-light,
   propagation-heavy search can go seconds between conflict or decision
   polls, and the deadline check in Budget rides the same hook. *)
let poll_props = 100_000

let solve_core ?(assumptions = []) ?(conflict_budget = max_int) s =
  cancel_until s 0;
  s.core <- [];
  if not s.ok then begin
    s.last_result <- Unsat;
    Unsat
  end
  else if not (flush_pending s) then begin
    s.last_result <- Unsat;
    Unsat
  end
  else begin
    s.last_result <- Undef;
    let assumptions = Array.of_list assumptions in
    let nassumptions = Array.length assumptions in
    let budget_start = s.conflicts in
    let restarts = ref 0 in
    let conflicts_this_restart = ref 0 in
    let limit = ref (restart_base * luby 0) in
    let props_poll = ref (s.propagations + poll_props) in
    (* Poll once up front: a pre-cancelled solver must not start a
       search that only conflicts can interrupt. *)
    let res = ref (if interrupted s then Some Undef else None) in
    while !res = None do
      let confl = propagate s in
      if confl >= 0 then begin
        s.conflicts <- s.conflicts + 1;
        incr conflicts_this_restart;
        if decision_level s = 0 then begin
          analyze_final s confl;
          res := Some Unsat
        end
        else begin
          let lits, bt_level, first, chain = analyze s confl in
          (* Glue is read off conflict-time levels, before the backjump
             unassigns the asserting literal. *)
          let lbd = compute_lbd s lits in
          (* Never backjump into the middle of the assumption prefix
             without replaying it: cancelling to [bt_level] is safe since
             the decision loop re-installs assumptions by level. *)
          cancel_until s bt_level;
          let slot = record_learnt s lits ~lbd first chain in
          if lit_val s lits.(0) = -1 then enqueue s lits.(0) slot
          else if lit_val s lits.(0) = 0 then begin
            (* Can only happen when the asserting literal is false at the
               root level: unconditionally unsat. *)
            analyze_final s slot;
            res := Some Unsat
          end;
          decay_activities s;
          if !res = None && s.policy.enabled && s.live_learnt > s.reduce_limit then
            reduce_db s;
          (* The interrupt poll rides the conflict counter (every 256
             conflicts) so a cancelled race loser stops well within one
             conflict slice without a closure call per conflict. *)
          if
            s.conflicts - budget_start >= conflict_budget
            || ((s.conflicts land 255 = 0 || s.propagations >= !props_poll)
               && begin
                    props_poll := s.propagations + poll_props;
                    interrupted s
                  end)
          then begin
            cancel_until s 0;
            res := Some Undef
          end
        end
      end
      else if
        !conflicts_this_restart >= !limit && decision_level s > nassumptions
      then begin
        incr restarts;
        s.restarts <- s.restarts + 1;
        (match s.restart_cb with Some cb -> cb s.restarts | None -> ());
        conflicts_this_restart := 0;
        limit := restart_base * luby !restarts;
        cancel_until s nassumptions
      end
      else if decision_level s < nassumptions then begin
        (* Install the next assumption as a decision. *)
        let p = assumptions.(decision_level s) in
        if Lit.var p >= s.nvars then invalid_arg "Solver.solve: unknown assumption variable";
        match lit_val s p with
        | 1 -> Vec.push s.trail_lim (Vec.size s.trail) (* dummy level *)
        | -1 ->
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s p (-1)
        | _ ->
          s.core <- analyze_assumptions s p;
          res := Some Unsat
      end
      else if
        ((s.decisions land 4095 = 0 && s.decisions > 0)
        || s.propagations >= !props_poll)
        && begin
             (* Conflict-light searches (heavy propagation, few
                conflicts) still observe cancellation through the
                decision and propagation counters. *)
             props_poll := s.propagations + poll_props;
             interrupted s
           end
      then res := Some Undef
      else begin
        let v = pick_branch_var s in
        if v < 0 then res := Some Sat
        else begin
          s.decisions <- s.decisions + 1;
          Vec.push s.trail_lim (Vec.size s.trail);
          enqueue s (Lit.of_var ~neg:(Bytes.get s.phase v = '\000') v) (-1)
        end
      end
    done;
    let r = match !res with Some r -> r | None -> assert false in
    (* Keep the model readable after Sat; otherwise return to the root. *)
    if r <> Sat then cancel_until s 0;
    s.last_result <- r;
    r
  end

let result_name = function Sat -> "sat" | Unsat -> "unsat" | Undef -> "undef"

let proof ?(trim = true) s =
  if s.ok || s.empty_id < 0 then
    invalid_arg "Solver.proof: instance not proved unconditionally unsatisfiable";
  Proof_log.to_proof ~trim s.log ~empty:s.empty_id ~nvars:s.nvars

(* Which learnt clauses earned their keep: histogram (by birth LBD) of
   the learnt steps reachable from the empty clause.  Deleted clauses
   count too — deletion removes a clause from the database, not from the
   resolutions it already served — which is why birth LBDs are kept per
   proof id, not per clause.  Costs a proof reconstruction; callers gate
   it on observability being on. *)
let core_birth_lbd s =
  let p = proof ~trim:true s in
  let used = Proof.used p in
  let h = Array.make hist_buckets 0 in
  Array.iteri
    (fun id u ->
      if u && id < Bytes.length s.birth then
        let b = Char.code (Bytes.get s.birth id) in
        if b > 0 then hist_bump h b)
    used;
  h

(* Sanitizer probes at the solve boundary.  Fast checks the answer
   against the clause database (trail consistency; on Sat, every input
   clause satisfied).  Paranoid additionally replays the resolution
   proof behind every unconditional Unsat — on the trimmed
   reconstruction, so the proof-log round-trip is validated too. *)
let check_result s r =
  if Check.on () then begin
    Check.probe "sat.trail_consistent" (fun () ->
        let ok = ref true in
        Vec.iter (fun l -> if lit_val s l <> 1 then ok := false) s.trail;
        !ok);
    match r with
    | Sat ->
      Check.probe "sat.model_satisfies" (fun () ->
          let ok = ref true in
          for i = 0 to s.nclauses - 1 do
            let c = s.clauses.(i) in
            if not c.learnt then begin
              let sat = ref false in
              Array.iter (fun l -> if lit_val s l = 1 then sat := true) c.lits;
              if not !sat then ok := false
            end
          done;
          !ok)
    | Unsat when s.empty_id >= 0 && Check.paranoid () -> (
      match Proof_check.check (proof s) with
      | Ok () -> Check.record "sat.proof_replay"
      | Error e ->
        Check.violated "sat.proof_replay"
          ~detail:(Format.asprintf "%a" Proof_check.pp_error e))
    | _ -> ()
  end

(* Each solve is one trace span carrying the search-effort deltas; with
   tracing disabled this is a single flag test on top of the search. *)
let solve ?assumptions ?conflict_budget s =
  let solve_core ?assumptions ?conflict_budget s =
    let r = solve_core ?assumptions ?conflict_budget s in
    check_result s r;
    r
  in
  if not (Isr_obs.Trace.enabled ()) then solve_core ?assumptions ?conflict_budget s
  else begin
    let c0 = s.conflicts and d0 = s.decisions and p0 = s.propagations in
    let r0 = s.restarts in
    let res = ref Undef in
    let end_args () =
      [
        ("result", result_name !res);
        ("conflicts", string_of_int (s.conflicts - c0));
        ("decisions", string_of_int (s.decisions - d0));
        ("propagations", string_of_int (s.propagations - p0));
        ("restarts", string_of_int (s.restarts - r0));
      ]
    in
    Isr_obs.Trace.span "sat.solve" ~end_args (fun () ->
        let r = solve_core ?assumptions ?conflict_budget s in
        res := r;
        r)
  end

let unsat_core s =
  if s.last_result <> Unsat then invalid_arg "Solver.unsat_core: last result not Unsat";
  s.core

let iter_input_clauses s f =
  for i = 0 to s.nclauses - 1 do
    let c = s.clauses.(i) in
    if not c.learnt then f ~tag:(Proof_log.tag s.log c.cid) c.lits
  done
