(* Packed append-only proof store; see the .mli for the record layout. *)

type t = {
  mutable index : int array;  (* step id -> offset into [data] *)
  mutable nsteps : int;
  mutable ninputs : int;
  mutable data : int array;
  mutable len : int;
  dels : Vec.t;               (* flattened (pos, id) deletion events *)
}

let create () =
  { index = Array.make 64 0;
    nsteps = 0;
    ninputs = 0;
    data = Array.make 256 0;
    len = 0;
    dels = Vec.create ();
  }

let n_steps t = t.nsteps
let n_inputs t = t.ninputs
let n_deletions t = Vec.size t.dels / 2
let bytes t = 8 * (t.len + t.nsteps + Vec.size t.dels)

let reserve_step t =
  if t.nsteps = Array.length t.index then begin
    let a = Array.make (2 * t.nsteps) 0 in
    Array.blit t.index 0 a 0 t.nsteps;
    t.index <- a
  end;
  let id = t.nsteps in
  t.index.(id) <- t.len;
  t.nsteps <- id + 1;
  id

let reserve_data t n =
  let cap = Array.length t.data in
  if t.len + n > cap then begin
    let a = Array.make (max (2 * cap) (t.len + n)) 0 in
    Array.blit t.data 0 a 0 t.len;
    t.data <- a
  end

let push t x =
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let add_input t ~tag lits =
  if tag < 0 then invalid_arg "Proof_log.add_input: negative tag";
  let id = reserve_step t in
  t.ninputs <- t.ninputs + 1;
  let nl = Array.length lits in
  reserve_data t (2 + nl);
  push t (-(tag + 1));
  push t nl;
  Array.iter (push t) lits;
  id

let add_derived t ~lits ~first ~chain =
  let id = reserve_step t in
  let nl = Array.length lits in
  let nc = List.length chain in
  reserve_data t (3 + nl + (2 * nc));
  push t first;
  push t nl;
  Array.iter (push t) lits;
  push t nc;
  List.iter
    (fun (pivot, aid) ->
      push t pivot;
      push t aid)
    chain;
  id

let delete t id =
  Vec.push t.dels t.nsteps;
  Vec.push t.dels id

let is_input t id = t.data.(t.index.(id)) < 0

let tag t id =
  let h = t.data.(t.index.(id)) in
  if h < 0 then -h - 1 else -1

let materialize t id =
  let o = t.index.(id) in
  let h = t.data.(o) in
  let nl = t.data.(o + 1) in
  let lits = Array.sub t.data (o + 2) nl in
  if h < 0 then Proof.Input { lits; tag = -h - 1 }
  else begin
    let co = o + 2 + nl in
    let nc = t.data.(co) in
    let chain =
      Array.init nc (fun k -> (t.data.(co + 1 + (2 * k)), t.data.(co + 2 + (2 * k))))
    in
    Proof.Derived { lits; first = h; chain }
  end

let to_proof ?(trim = true) t ~empty ~nvars =
  let n = t.nsteps in
  if empty < 0 || empty >= n then invalid_arg "Proof_log.to_proof: bad empty id";
  let used = Array.make n false in
  used.(empty) <- true;
  if trim then
    (* Antecedents always have smaller ids: one backwards sweep. *)
    for id = n - 1 downto 0 do
      if used.(id) then begin
        let o = t.index.(id) in
        let h = t.data.(o) in
        if h >= 0 then begin
          used.(h) <- true;
          let co = o + 2 + t.data.(o + 1) in
          let nc = t.data.(co) in
          for k = 0 to nc - 1 do
            used.(t.data.(co + 2 + (2 * k))) <- true
          done
        end
      end
    done;
  let steps =
    Array.init n (fun id ->
        (* Inputs survive trimming: interpolation labels variables by
           their occurrences across all input clauses. *)
        if (not trim) || used.(id) || is_input t id then materialize t id
        else Proof.Trimmed)
  in
  let ndel = n_deletions t in
  let deletions =
    Array.init ndel (fun k -> (Vec.get t.dels (2 * k), Vec.get t.dels ((2 * k) + 1)))
  in
  { Proof.steps; empty; nvars; deletions }
