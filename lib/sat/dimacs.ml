type cnf = { nvars : int; clauses : Lit.t list list }

(* DIMACS in the wild separates tokens with runs of spaces and tabs, and
   CRLF files leave a '\r' glued to the last token of every line; split
   on all three so such files do not fail with "not an integer". *)
let is_sep = function ' ' | '\t' | '\r' -> true | _ -> false

let tokens line =
  let n = String.length line in
  let rec skip i = if i < n && is_sep line.[i] then skip (i + 1) else i in
  let rec word i = if i < n && not (is_sep line.[i]) then word (i + 1) else i in
  let rec go i acc =
    let i = skip i in
    if i >= n then List.rev acc
    else
      let j = word i in
      go j (String.sub line i (j - i) :: acc)
  in
  go 0 []

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref (-1) in
  let nclauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> fail (Printf.sprintf "not an integer: %S" tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some i ->
      if abs i > !nvars then fail (Printf.sprintf "literal %d out of range" i)
      else current := Lit.of_dimacs i :: !current
  in
  List.iter
    (fun line ->
      if !error = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          if !nvars >= 0 then fail "duplicate header"
          else
            match tokens line with
            | [ "p"; "cnf"; v; c ] -> (
              match (int_of_string_opt v, int_of_string_opt c) with
              | Some v, Some c when v >= 0 && c >= 0 ->
                nvars := v;
                nclauses := c
              | _ -> fail "malformed header counts")
            | _ -> fail "malformed problem line"
        end
        else if !nvars < 0 then fail "clause before header"
        else List.iter handle_token (tokens line))
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
    if !nvars < 0 then Error "missing header"
    else if !current <> [] then Error "unterminated clause"
    else begin
      let clauses = List.rev !clauses in
      if List.length clauses <> !nclauses then
        Error
          (Printf.sprintf "header promised %d clauses, found %d" !nclauses
             (List.length clauses))
      else Ok { nvars = !nvars; clauses }
    end

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error msg

let to_string { nvars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (Lit.to_dimacs l))) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load solver { nvars; clauses } =
  for _ = 1 to nvars do
    ignore (Solver.new_var solver)
  done;
  List.iter (fun c -> Solver.add_clause solver c) clauses
