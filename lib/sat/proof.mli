(** Resolution proofs produced by the solver on unsatisfiable instances.

    Clauses are numbered by creation order: every antecedent of a derived
    clause has a smaller id, so a single in-order pass suffices to compute
    any inductive attribute of the proof (interpolants in particular).

    A derived clause records a {e trivial resolution chain}: starting from
    clause [first], each [(pivot, id)] pair resolves the running resolvent
    with clause [id] on variable [pivot].  The final resolvent equals the
    derived clause (as a set of literals).  The last step of the proof
    derives the empty clause.

    Proofs are reconstructed on demand from the solver's append-only
    {!Proof_log}.  Reconstruction normally {e trims}: derived steps not
    reachable from the empty clause come back as {!Trimmed} placeholders
    (ids stay stable, payloads are dropped).  Input steps are always
    materialized — interpolation labels variables by their occurrences
    across {e all} input clauses, so inputs must survive trimming even
    when unused.  [deletions] records the clause-database deletion events
    of the originating solve, interleaved into {!to_lrat} as [d] lines. *)

type step =
  | Input of { lits : Lit.t array; tag : int }
      (** An original clause with its partition tag (0 when untagged). *)
  | Derived of { lits : Lit.t array; first : int; chain : (int * int) array }
      (** A learned clause: [chain] is an array of [(pivot_var, clause_id)]. *)
  | Trimmed
      (** A derived step outside the used cone, elided by reconstruction.
          Never an antecedent of any materialized step. *)

type t = {
  steps : step array;  (** indexed by clause id *)
  empty : int;         (** id of the (derived or input) empty clause *)
  nvars : int;         (** number of variables in the instance *)
  deletions : (int * int) array;
      (** Database deletion events in log order: [(pos, id)] says clause
          [id] was deleted from the solver's clause database when [pos]
          steps existed — i.e. between the creation of steps [pos - 1]
          and [pos].  Deleted clauses remain valid proof steps (the log
          is append-only); the events only gate {!to_lrat}'s [d] lines. *)
}

val lits : t -> int -> Lit.t array
(** Literals of the clause with the given id.
    @raise Invalid_argument on a {!Trimmed} step. *)

val tag : t -> int -> int option
(** Partition tag of an input clause, [None] for derived clauses. *)

val max_tag : t -> int
(** Largest partition tag among input clauses. *)

val fold_inorder : (get:(int -> 'a) -> int -> step -> 'a) -> t -> 'a array
(** [fold_inorder f p] computes an attribute for every clause in id order;
    [f ~get id step] may consult the attribute of any clause with a
    smaller id through [get]. *)

val used : t -> bool array
(** Clause ids reachable from the empty clause through antecedent edges —
    the part of the proof that actually derives unsatisfiability.
    Solvers log every learned clause, so typically much of the proof is
    unused.  {!Trimmed} steps are never used. *)

val core : t -> int list
(** Ids of the {e input} clauses in the used part: the unsatisfiable
    core.  Proof-based abstraction keys on which transition clauses
    appear here. *)

val core_tags : t -> int list
(** Sorted distinct partition tags occurring in the core. *)

val to_dimacs : t -> string
(** DIMACS CNF rendering of the input clauses.  Clause [i] of the file
    (1-based) is the [i]-th input step of the proof — the implicit id
    numbering {!to_lrat} hints refer to. *)

val to_lrat : t -> string
(** Compact LRAT rendering of the refutation: one
    [<id> <lit>* 0 <hint>* 0] line per {e used} derived step, ids
    continuing after the input clauses of {!to_dimacs}.  The hints of
    each step are its reversed resolution chain followed by its first
    antecedent, which is exactly unit-propagation order, so the export
    is checkable by reverse unit propagation alone (see
    [Isr_check.Lrat_check]) with no knowledge of the solver.

    Database {!deletions} are interleaved as [<id> d <id>* 0] lines at
    their recorded positions (events whose clause was trimmed, or that
    fall after the last used step, are dropped).  A deleted clause is by
    construction never a hint of a later step — the solver can only
    resolve against clauses still in its database — so the export
    checks under strict deletion semantics.  Empty when an input clause
    itself is empty. *)

val bytes_estimate : t -> int
(** Estimated in-memory footprint of the materialized steps in bytes
    (literals, chains and per-step headers; {!Trimmed} steps count one
    word).  The quantity behind the ["proof.bytes"] gauge. *)

val pp_stats : Format.formatter -> t -> unit
(** One line with used-vs-total step counts, resolution count, the
    {!bytes_estimate} and the empty-clause id, so trimming wins show up
    in [--trace] output. *)
