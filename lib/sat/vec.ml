type t = { mutable a : int array; mutable n : int }

let create ?(cap = 16) () = { a = Array.make (max cap 1) 0; n = 0 }
let size v = v.n

let get v i =
  assert (i >= 0 && i < v.n);
  Array.unsafe_get v.a i

let set v i x =
  assert (i >= 0 && i < v.n);
  Array.unsafe_set v.a i x

let grow v =
  (* The backing array can be empty (e.g. [of_array [||]]); doubling 0
     stays 0 forever and the subsequent unsafe_set writes out of bounds,
     so clamp the new capacity to at least 1. *)
  let cap = Array.length v.a in
  let a' = Array.make (max 1 (2 * cap)) 0 in
  Array.blit v.a 0 a' 0 v.n;
  v.a <- a'

let push v x =
  if v.n = Array.length v.a then grow v;
  Array.unsafe_set v.a v.n x;
  v.n <- v.n + 1

let pop v =
  assert (v.n > 0);
  v.n <- v.n - 1;
  Array.unsafe_get v.a v.n

let last v =
  assert (v.n > 0);
  Array.unsafe_get v.a (v.n - 1)

let clear v = v.n <- 0

let shrink v n =
  assert (n >= 0 && n <= v.n);
  v.n <- n

let iter f v =
  for i = 0 to v.n - 1 do
    f (Array.unsafe_get v.a i)
  done

let to_array v = Array.sub v.a 0 v.n

let of_array a =
  let n = Array.length a in
  if n = 0 then create ~cap:1 ()
  else { a = Array.copy a; n }

let mem v x =
  let rec loop i = i < v.n && (v.a.(i) = x || loop (i + 1)) in
  loop 0

let remove v x =
  let rec loop i =
    if i < v.n then
      if v.a.(i) = x then begin
        v.a.(i) <- v.a.(v.n - 1);
        v.n <- v.n - 1
      end
      else loop (i + 1)
  in
  loop 0
