type error =
  | Missing_pivot of { clause : int; pivot : int }
  | Wrong_result of { clause : int }
  | Empty_not_empty

let pp_error fmt = function
  | Missing_pivot { clause; pivot } ->
    Format.fprintf fmt "clause %d: pivot variable %d absent from a premise" clause pivot
  | Wrong_result { clause } ->
    Format.fprintf fmt "clause %d: replayed resolvent differs from recorded literals" clause
  | Empty_not_empty -> Format.fprintf fmt "registered empty clause is not empty"

module Lset = Set.Make (Int)

let set_of_lits lits = Array.fold_left (fun s l -> Lset.add l s) Lset.empty lits

exception Fail of error

(* Resolve [res] with clause [other] on variable [pivot]: [res] must hold
   one phase of the pivot, [other] the opposite one. *)
let resolve clause_id res other pivot =
  let p = Lit.pos pivot and n = Lit.of_var ~neg:true pivot in
  let lp, ln =
    if Lset.mem p res && Lset.mem n other then (p, n)
    else if Lset.mem n res && Lset.mem p other then (n, p)
    else raise (Fail (Missing_pivot { clause = clause_id; pivot }))
  in
  Lset.union (Lset.remove lp res) (Lset.remove ln other)

let check (p : Proof.t) =
  try
    let sets =
      Proof.fold_inorder
        (fun ~get id step ->
          match step with
          | Proof.Input { lits; _ } -> set_of_lits lits
          (* A trimmed step is outside the used cone, so no materialized
             step resolves against it; give it an empty attribute (any
             accidental reference would fail the resolution replay). *)
          | Proof.Trimmed -> Lset.empty
          | Proof.Derived { lits; first; chain } ->
            let res =
              Array.fold_left
                (fun res (pivot, aid) -> resolve id res (get aid) pivot)
                (get first) chain
            in
            if not (Lset.equal res (set_of_lits lits)) then
              raise (Fail (Wrong_result { clause = id }));
            res)
        p
    in
    if not (Lset.is_empty sets.(p.Proof.empty)) then raise (Fail Empty_not_empty);
    Ok ()
  with Fail e -> Error e
