// Vending machine: credit accumulates coin by coin and vends at the
// exact price; the guarded design can never overshoot.
input coin;
input vend_req;
reg credit[4] = 0;

wire below    = credit < 7;
wire at_price = credit == 7;
wire vend     = vend_req & at_price;
wire accept   = coin & below;

next credit = vend ? 0 : (accept ? credit + 1 : credit);

bad credit == 8;
