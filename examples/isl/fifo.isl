// Circular FIFO with a redundant occupancy counter; the consistency
// invariant relates the counter to the pointer difference.
input push;
input pop;
reg wr[3] = 0;
reg rd[3] = 0;
reg count[4] = 0;

wire full  = count == 8;
wire empty = count == 0;
wire do_push = push & !pop & !full;
wire do_pop  = pop & !push & !empty;

next wr = do_push ? wr + 1 : wr;
next rd = do_pop ? rd + 1 : rd;
next count = do_push ? count + 1 : (do_pop ? count - 1 : count);

bad count[2:0] != wr - rd;
