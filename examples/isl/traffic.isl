// Two-phase traffic light with green-time counter; both directions
// green at once is the catastrophe the interlock must rule out.
input emergency;
reg phase[2] = 0;      -- 0 NS green, 1 all red, 2 EW green, 3 all red
reg timer[3] = 0;
reg green_ns = 1;
reg green_ew = 0;

wire wrap = timer == 5;

next timer = wrap ? 0 : timer + 1;
next phase = wrap ? phase + 1 : phase;
next green_ns = (wrap ? phase + 1 : phase) == 0;
next green_ew = (wrap ? phase + 1 : phase) == 2;

bad green_ns & green_ew;
justice green_ew;      -- liveness: EW eventually keeps getting green
