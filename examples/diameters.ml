(* Circuit diameters versus engine convergence depths — the discussion of
   Section IV of the paper.  For a handful of provable designs, compute
   the exact forward/backward diameters with the BDD engine and compare
   them to where standard interpolation and interpolation sequences
   actually converge (kfp, jfp).

   Run with: dune exec examples/diameters.exe *)

open Isr_core
open Isr_suite
module Reach = Isr_bdd.Reach

let limits =
  { Budget.time_limit = 30.0; conflict_limit = 2_000_000; bound_limit = 80; reduce = Isr_sat.Solver.default_reduce }

let dia = function
  | { Reach.diameter = Some d; _ } -> string_of_int d
  | _ -> "-"

let depths engine model =
  match Engine.run engine ~limits model with
  | Verdict.Proved { kfp; jfp; _ }, _ -> Printf.sprintf "k=%d j=%d" kfp jfp
  | Verdict.Falsified { depth; _ }, _ -> Printf.sprintf "cex@%d" depth
  | Verdict.Unknown _, _ -> "?"

let () =
  Format.printf "%-16s %5s %5s | %-14s %-14s %-14s@." "design" "d_F" "d_B" "itp"
    "itpseq" "sitpseq";
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> ()
      | Some entry ->
        let model = Registry.build_validated entry in
        let fwd = Reach.forward ~max_nodes:4_000_000 model in
        let bwd = Reach.backward ~max_nodes:4_000_000 model in
        Format.printf "%-16s %5s %5s | %-14s %-14s %-14s@." name (dia fwd) (dia bwd)
          (depths Engine.Itp model)
          (depths (Engine.Itpseq Bmc.Assume) model)
          (depths (Engine.Sitpseq (0.5, Bmc.Assume)) model))
    [
      "amba2g3"; "eijkring8"; "vending11"; "traffic6"; "peterson"; "prodcons8";
      "coherence3"; "reactor2x3"; "guidance4"; "countermod6m50";
    ];
  Format.printf
    "@.Note how over-approximate traversals converge well below d_F, and how@.";
  Format.printf
    "standard interpolation's cumulative abstraction reaches fixpoints at@.";
  Format.printf "smaller bounds k than the sequence-based engines (Section IV-B).@."
