(* Invariant certificates end-to-end: run several proving engines on the
   same design, extract each PASS's inductive invariant, re-check it with
   independent SAT queries, and show what the invariants look like
   (support and size) — the interpolation engines and IC3 find quite
   different certificates for the same property.

   Run with: dune exec examples/certified_proof.exe *)

open Isr_aig
open Isr_model
open Isr_core
open Isr_suite

let limits =
  { Budget.time_limit = 30.0; conflict_limit = 2_000_000; bound_limit = 60; reduce = Isr_sat.Solver.default_reduce }

let engines =
  [
    Engine.Itp;
    Engine.Itpseq Bmc.Assume;
    Engine.Sitpseq (0.5, Bmc.Assume);
    Engine.Itpseq_cba (0.5, Bmc.Exact);
    Engine.Pdr;
  ]

let () =
  let entry = Option.get (Registry.find "peterson") in
  let model = Registry.build_validated entry in
  Format.printf "design: %a@.@." Model.pp_stats model;
  Format.printf "%-20s %-18s %8s %8s  %s@." "engine" "verdict" "inv size" "support"
    "certificate";
  List.iter
    (fun engine ->
      let verdict, _ = Engine.run engine ~limits model in
      match verdict with
      | Verdict.Proved { kfp; jfp; invariant = Some inv } ->
        let size = Aig.cone_size model.Model.man inv in
        let support = List.length (Aig.support model.Model.man inv) in
        let cert =
          match Certify.check model inv with
          | Ok () -> "checked (init+consec+safe)"
          | Error f -> Format.asprintf "INVALID: %a" Certify.pp_failure f
        in
        Format.printf "%-20s PASS k=%-3d j=%-3d   %8d %8d  %s@." (Engine.name engine)
          kfp jfp size support cert
      | v -> Format.printf "%-20s %a@." (Engine.name engine) Verdict.pp v)
    engines;
  (* The smallest certificate, rendered as a DOT graph for inspection. *)
  let best = ref None in
  List.iter
    (fun engine ->
      match Engine.run engine ~limits model with
      | Verdict.Proved { invariant = Some inv; _ }, _ ->
        let size = Aig.cone_size model.Model.man inv in
        (match !best with
        | Some (_, s) when s <= size -> ()
        | _ -> best := Some (inv, size))
      | _ -> ())
    engines;
  match !best with
  | None -> ()
  | Some (inv, size) ->
    let dot =
      Aig.to_dot model.Model.man
        ~input_name:(fun i ->
          if i < model.Model.num_inputs then Printf.sprintf "pi%d" i
          else Printf.sprintf "latch%d" (i - model.Model.num_inputs))
        [ ("invariant", inv) ]
    in
    Format.printf "@.smallest certificate has %d AND nodes; DOT rendering:@.%s@." size
      (if String.length dot > 1500 then String.sub dot 0 1500 ^ "...\n(truncated)" else dot)
