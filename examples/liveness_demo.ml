(* Liveness checking through the liveness-to-safety transformation:
   "the token keeps circulating" on a token ring, decided by the safety
   engines of this library, with fair-lasso witnesses decoded and
   replayed.

   Run with: dune exec examples/liveness_demo.exe *)

open Isr_aig
open Isr_model
open Isr_core
open Isr_suite

let limits =
  { Budget.time_limit = 30.0; conflict_limit = 2_000_000; bound_limit = 80; reduce = Isr_sat.Solver.default_reduce }

let () =
  (* The enable-gated token ring: an adversarial environment may stall
     the ring forever, so "the token returns to station 0 infinitely
     often" FAILS — the scheduler simply stops enabling.  The witness is
     a lasso whose loop holds the enable low. *)
  let ring = Circuits.token_ring ~stations:4 ~unsafe_at:None in
  let token0 = Model.latch_lit ring 0 in
  Format.printf "model: %a@." Model.pp_stats ring;
  Format.printf "@.property 1: token at station 0 infinitely often (gated ring)@.";
  let safety, decode = L2s.transform ring ~justice:[ token0 ] in
  (match Engine.run (Engine.Bmc_only Bmc.Exact) ~limits safety with
  | Verdict.Falsified { trace; _ }, stats ->
    let w = decode trace in
    Format.printf
      "  FAILS: fair lasso found (%a) — stem %d steps, loop %d steps@."
      Verdict.pp_stats stats
      (Array.length w.L2s.stem.Trace.inputs)
      (Array.length w.L2s.loop.Trace.inputs);
    Format.printf "  witness replays: %b@."
      (L2s.check_witness ring ~justice:[ token0 ] w)
  | v, _ -> Format.printf "  unexpected: %a@." Verdict.pp v);
  (* Under a fairness assumption — the enable itself fires infinitely
     often — the stalling adversary is ruled out and the property holds:
     no lasso can both enable infinitely often and keep the token away
     from station 0 forever. *)
  Format.printf
    "@.property 2: same, assuming the enable fires infinitely often@.";
  let enable = Model.input_lit ring 0 in
  let not_token0_anymore =
    (* Violation lasso: enable fair AND token never at 0... encode by
       asking for a lasso with [enable] fair and [token0] fair — if the
       only fair-enable lassos also visit station 0, the modified
       property "enable fair and never token0" is unsatisfiable.  Check
       it directly: a lasso with justice = {enable} on the ring with
       station-0 visits forbidden inside the loop. *)
    Aig.and_ ring.Model.man enable (Aig.not_ token0)
  in
  ignore not_token0_anymore;
  (* Forbid station-0 visits by making them reset the monitor: simplest
     faithful encoding — add justice = {enable} on a copy of the ring
     whose bad... here we ask the equivalent question: does a fair
     lasso exist where enable fires infinitely often and the token sits
     at station 0 in no state of the loop?  Build it by monitoring
     "token0 since snapshot" and requiring it to stay false: that is a
     safety property of the L2S model itself, so we conjoin the L2S bad
     with the monitor. *)
  let safety2, _ = L2s.transform ring ~justice:[ enable ] in
  (* never_token0: latch that records a station-0 visit since the save.
     The L2S model appends monitor latches after the ring's; rebuild the
     conjunction on top of safety2. *)
  let man2 = safety2.Model.man in
  let b = Builder.create "ring_fair_no0" in
  let pis = Array.init safety2.Model.num_inputs (fun _ -> Builder.input b) in
  let ls =
    Array.init safety2.Model.num_latches (fun i ->
        Builder.latch b ~init:safety2.Model.init.(i) ())
  in
  let map i =
    if i < safety2.Model.num_inputs then pis.(i)
    else ls.(i - safety2.Model.num_inputs)
  in
  let copy = Aig.copier ~src:man2 ~dst:(Builder.man b) ~map in
  Array.iteri (fun i _ -> Builder.set_next b ls.(i) (copy safety2.Model.next.(i))) ls;
  (* token0 is ring latch 0 = safety2 latch 0; the L2S "saved" flag is
     the first monitor latch, appended right after the ring's latches.
     The station-0 monitor mirrors L2S's own seen-latches: it records
     visits since the snapshot, so the check covers exactly the loop. *)
  let man' = Builder.man b in
  let token0' = ls.(0) in
  let saved' = ls.(ring.Model.num_latches) in
  let save_in = pis.(safety2.Model.num_inputs - 1) in
  let triggered = Aig.or_ man' saved' save_in in
  let seen0 = Builder.latch b () in
  Builder.set_next b seen0 (Aig.and_ man' triggered (Aig.or_ man' seen0 token0'));
  let bad = Aig.and_ man' (copy safety2.Model.bad) (Aig.not_ seen0) in
  let fair_no0 = Builder.finish b ~bad in
  match Engine.run Engine.Pdr ~limits fair_no0 with
  | Verdict.Proved { kfp; jfp; _ }, stats ->
    Format.printf
      "  HOLDS: no enable-fair lasso avoids station 0 (PDR k=%d j=%d, %a)@." kfp jfp
      Verdict.pp_stats stats
  | v, _ -> Format.printf "  unexpected: %a@." Verdict.pp v
