(* Engine comparison on an AMBA-like round-robin arbiter family — the
   scenario behind the paper's bj08amba rows: the same design, correct
   and bugged, across all four engines of Table I.

   Run with: dune exec examples/arbiter_showdown.exe *)

open Isr_core
open Isr_suite

let engines =
  [
    Engine.Itp;
    Engine.Itpseq Bmc.Assume;
    Engine.Sitpseq (0.5, Bmc.Assume);
    Engine.Itpseq_cba (0.5, Bmc.Exact);
  ]

let limits =
  { Budget.time_limit = 30.0; conflict_limit = 2_000_000; bound_limit = 60; reduce = Isr_sat.Solver.default_reduce }

let () =
  Format.printf "%-14s" "design";
  List.iter (fun e -> Format.printf " | %-22s" (Engine.name e)) engines;
  Format.printf "@.";
  List.iter
    (fun (masters, buggy) ->
      let model = Circuits.arbiter ~masters ~buggy in
      Format.printf "%-14s" (Printf.sprintf "arbiter%d%s" masters (if buggy then "/bug" else ""));
      List.iter
        (fun engine ->
          let verdict, stats = Engine.run engine ~limits model in
          let cell =
            match verdict with
            | Verdict.Proved { kfp; jfp; _ } ->
              Printf.sprintf "PASS k=%d j=%d %.2fs" kfp jfp (Verdict.time stats)
            | Verdict.Falsified { depth; _ } ->
              Printf.sprintf "FAIL d=%d %.2fs" depth (Verdict.time stats)
            | Verdict.Unknown _ -> "unknown"
          in
          Format.printf " | %-22s" cell)
        engines;
      Format.printf "@.")
    [ (2, false); (3, false); (4, false); (5, false); (4, true) ]
