(* CBA (counterexample-based abstraction) in action: a small property
   core buried in hundreds of irrelevant latches — the shape of the
   paper's industrial benchmarks, where ITPSEQCBA is the only engine to
   finish.  The demo contrasts plain SITPSEQ with the CBA-integrated
   engine and reports how much of the design stayed frozen.

   Run with: dune exec examples/cegar_demo.exe *)

open Isr_core
open Isr_suite

let limits =
  { Budget.time_limit = 60.0; conflict_limit = 5_000_000; bound_limit = 80; reduce = Isr_sat.Solver.default_reduce }

let () =
  let core = Circuits.counter_mod ~bits:5 ~modulus:24 in
  List.iter
    (fun pad ->
      let model =
        Circuits.industrial
          ~name:(Printf.sprintf "padded%d" pad)
          ~core ~pad_latches:pad ~pad_inputs:(pad / 4) ~seed:2026
      in
      Format.printf "@.design with %d pad latches: %a@." pad Isr_model.Model.pp_stats
        model;
      let v1, s1 = Engine.run (Engine.Sitpseq (0.5, Bmc.Assume)) ~limits model in
      Format.printf "  sitpseq   : %a  (%a)@." Verdict.pp v1 Verdict.pp_stats s1;
      let v2, s2 = Engine.run (Engine.Itpseq_cba (0.5, Bmc.Exact)) ~limits model in
      Format.printf "  itpseqcba : %a  (%a)@." Verdict.pp v2 Verdict.pp_stats s2;
      Format.printf "  cba kept %d of %d latches frozen after %d refinements@."
        (Verdict.abstract_latches s2) model.Isr_model.Model.num_latches
        (Verdict.refinements s2))
    [ 50; 150; 300 ]
