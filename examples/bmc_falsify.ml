(* Falsification with bounded model checking: hunt the bug in the broken
   vending machine, compare the three BMC target formulations of the
   paper's Section III, and replay the counterexample.

   Run with: dune exec examples/bmc_falsify.exe *)

open Isr_core
open Isr_model
open Isr_suite

let limits =
  { Budget.time_limit = 30.0; conflict_limit = 2_000_000; bound_limit = 40; reduce = Isr_sat.Solver.default_reduce }

let () =
  let model = Circuits.vending ~price:7 ~buggy:true in
  Format.printf "model: %a@." Model.pp_stats model;
  List.iter
    (fun check ->
      match Bmc.run ~check ~limits model with
      | Verdict.Falsified { depth; trace }, stats ->
        Format.printf "bmc-%-7s FAIL at depth %d  (%a)@." (Bmc.check_name check) depth
          Verdict.pp_stats stats;
        assert (Sim.check_trace model trace)
      | v, _ -> Format.printf "bmc-%-7s %a@." (Bmc.check_name check) Verdict.pp v)
    [ Bmc.Bound; Bmc.Exact; Bmc.Assume ];
  (* Show the witness from the assume-k run. *)
  match Bmc.run ~check:Bmc.Assume ~limits model with
  | Verdict.Falsified { depth; trace }, _ ->
    Format.printf "@.witness (inputs are [coin; vend_req] per frame):@.%a@." Trace.pp
      trace;
    let states = Sim.run model trace in
    Format.printf "@.credit per frame:";
    Array.iteri
      (fun f st ->
        if f <= depth then begin
          let v = ref 0 in
          Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) st;
          Format.printf " %d" !v
        end)
      states;
    Format.printf "@.the buggy machine accepts an 8th coin: credit overflows the price@."
  | _ -> assert false
